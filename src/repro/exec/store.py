"""Resumable result store: append-only JSONL keyed by job content.

Each line of the store is one computed job::

    {"key": "<sha256>", "job": {...}, "result": {...}, "meta": {...}}

``result`` is the :meth:`~repro.metrics.comparison.SchemeResult.canonical_dict`
of the run — everything measured except the host-dependent wall clock, which
lives in ``meta`` together with the executor backend that produced the line.
Because jobs are content-addressed (see :class:`~repro.exec.job.ExperimentJob`)
and the canonical result of a job is deterministic, two stores produced by
different backends (or different machines of the same platform) for the same
job list are equal line-for-line after keying — which is what the CI smoke
test asserts.

Resume semantics: :func:`~repro.exec.executors.run_jobs` skips every job
whose key is already present, so re-running a sweep against the same store
recomputes nothing and only fills in missing points.  Appending the same key
twice is allowed (last write wins on load), so a crashed run can simply be
restarted against its own store.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.exec.job import ExperimentJob
from repro.metrics.comparison import SchemeResult


class ResultStoreError(ValueError):
    """The store file is corrupt in a way resume cannot safely ignore."""


@dataclass(frozen=True)
class StoredEntry:
    """One stored line, hydrated: the job, its result and the line meta.

    The query API (:meth:`ResultStore.query`) hands these out instead of raw
    dicts so analyses can reach typed views (``entry.job.spec.topology``,
    ``entry.result.mean_fct_s()``) without re-parsing anything.
    """

    key: str
    job: ExperimentJob
    result: SchemeResult
    meta: Dict[str, Any]

    @property
    def tags(self) -> Dict[str, Any]:
        """The job's presentation tags (ensemble, replicate, role, ...)."""
        return self.job.tags

    @property
    def scheme_name(self) -> str:
        """The job's scheme key (or inline scheme name)."""
        return self.job.scheme_name

    @property
    def ensemble(self) -> str:
        """The ensemble label this entry belongs to.

        Jobs planned by :func:`~repro.exec.planner.plan_replications` carry
        an explicit ``ensemble`` tag; anything else (plain comparisons,
        sweep points) falls back to the scenario's name, so grouping by
        ensemble is total.
        """
        return str(self.tags.get("ensemble", self.job.spec.name))

    @property
    def replicate(self) -> int:
        """The replicate index within the ensemble (0 when untagged)."""
        return int(self.tags.get("replicate", 0))


class ResultStore:
    """JSONL-backed cache of computed :class:`ExperimentJob` results.

    Parameters
    ----------
    path:
        The JSONL file.  Created (with parents) on first write; a missing
        file reads as an empty store.
    fsync:
        Default durability of :meth:`put`: when true, every append is
        ``os.fsync`` ed before returning, so a checkpointed result survives
        not just a process crash but a machine crash.  Off by default — the
        syscall costs more than most jobs' serialisation — and overridable
        per call.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._index: Dict[str, Dict[str, Any]] = {}
        self._loaded = False
        #: hydrated, sorted entries — rebuilding dataclasses from every line
        #: is the dominant cost of analyses, so it happens once per store
        #: state (invalidated by :meth:`put` and :meth:`reload`)
        self._entries_cache: Optional[List[StoredEntry]] = None

    # -- loading -----------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        lines = self.path.read_text(encoding="utf-8").splitlines()
        last_content = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
            except (ValueError, KeyError, TypeError) as exc:
                if line_no - 1 == last_content:
                    # A truncated *final* line is the signature of a run
                    # killed mid-append (SIGKILL, ENOSPC); dropping it keeps
                    # the documented crash-resume semantics — the job it held
                    # is simply recomputed.
                    warnings.warn(
                        f"{self.path}:{line_no}: dropping truncated final "
                        f"result-store line ({exc}); the job will be recomputed",
                        stacklevel=3,
                    )
                    continue
                # Corruption *before* the end cannot come from an append
                # crash and may hide arbitrary data loss: refuse to guess.
                raise ResultStoreError(
                    f"{self.path}:{line_no}: corrupt result-store line ({exc})"
                ) from exc
            self._index[key] = entry

    def reload(self) -> None:
        """Drop the in-memory index and re-read the file on next access."""
        self._index.clear()
        self._loaded = False
        self._entries_cache = None

    # -- querying ----------------------------------------------------------------------
    def __contains__(self, key: object) -> bool:
        self._ensure_loaded()
        if isinstance(key, ExperimentJob):
            key = key.key
        return key in self._index

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    def keys(self) -> Iterator[str]:
        """The stored job keys."""
        self._ensure_loaded()
        return iter(list(self._index))

    def get(self, job_or_key: Union[str, ExperimentJob]) -> Optional[SchemeResult]:
        """The cached result for a job (or raw key), or ``None`` if absent."""
        self._ensure_loaded()
        key = job_or_key.key if isinstance(job_or_key, ExperimentJob) else str(job_or_key)
        entry = self._index.get(key)
        if entry is None:
            return None
        return SchemeResult.from_dict(entry["result"])

    def entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw stored line (job + result + meta) for ``key``."""
        self._ensure_loaded()
        return self._index.get(key)

    def _hydrate(self, entry: Dict[str, Any]) -> StoredEntry:
        return StoredEntry(
            key=str(entry["key"]),
            job=ExperimentJob.from_dict(entry["job"]),
            result=SchemeResult.from_dict(entry["result"]),
            meta=dict(entry.get("meta", {})),
        )

    def entries_sorted(self) -> List[StoredEntry]:
        """Every stored line, hydrated, in a deterministic order.

        Sorted by ``(ensemble, replicate, scheme, key)`` — *not* file order,
        which for pooled backends is completion order and therefore differs
        between a serial and a process store of the same jobs.  Any two
        stores holding the same results enumerate identically here, which is
        what makes analyses reading through this API backend-independent.
        """
        self._ensure_loaded()
        if self._entries_cache is None:
            hydrated = [self._hydrate(entry) for entry in self._index.values()]
            self._entries_cache = sorted(
                hydrated, key=lambda e: (e.ensemble, e.replicate, e.scheme_name, e.key)
            )
        return list(self._entries_cache)

    def query(
        self,
        scheme: Optional[str] = None,
        ensemble: Optional[str] = None,
        tags: Optional[Mapping[str, Any]] = None,
        spec_fields: Optional[Mapping[str, Any]] = None,
        predicate: Optional[Callable[[StoredEntry], bool]] = None,
    ) -> List[StoredEntry]:
        """Filter the stored entries; all criteria are ANDed.

        Parameters
        ----------
        scheme:
            Match the job's scheme key/name (``"scda"``).
        ensemble:
            Match the ensemble label (see :attr:`StoredEntry.ensemble`).
        tags:
            Subset match on the job's tags (``{"role": "candidate"}``).
        spec_fields:
            Subset match on :class:`~repro.experiments.spec.ScenarioSpec`
            fields by name (``{"topology": "tree", "seed": 1}``); unknown
            field names raise :class:`ResultStoreError` rather than
            silently matching nothing.
        predicate:
            Arbitrary final filter over the hydrated entries.

        Returns entries in the deterministic :meth:`entries_sorted` order.
        """
        selected = self.entries_sorted()
        if scheme is not None:
            selected = [e for e in selected if e.scheme_name == scheme]
        if ensemble is not None:
            selected = [e for e in selected if e.ensemble == str(ensemble)]
        if tags:
            selected = [
                e
                for e in selected
                if all(e.tags.get(k) == v for k, v in tags.items())
            ]
        if spec_fields:
            from dataclasses import fields as dataclass_fields

            from repro.experiments.spec import ScenarioSpec

            valid = {f.name for f in dataclass_fields(ScenarioSpec)}
            unknown = sorted(set(spec_fields) - valid)
            if unknown:
                raise ResultStoreError(
                    f"unknown ScenarioSpec field(s) {unknown} in store query; "
                    f"valid fields: {sorted(valid)}"
                )
            selected = [
                e
                for e in selected
                if all(
                    getattr(e.job.spec, name) == value
                    for name, value in spec_fields.items()
                )
            ]
        if predicate is not None:
            selected = [e for e in selected if predicate(e)]
        return selected

    def group_by_ensemble(self, **query_kwargs: Any) -> Dict[str, List[StoredEntry]]:
        """Stored entries grouped by ensemble label.

        Accepts every :meth:`query` criterion; groups preserve the
        deterministic entry order, and group insertion order follows the
        sorted ensemble labels.
        """
        groups: Dict[str, List[StoredEntry]] = {}
        for entry in self.query(**query_kwargs):
            groups.setdefault(entry.ensemble, []).append(entry)
        return groups

    def schemes(self) -> List[str]:
        """The distinct scheme names present in the store, sorted."""
        return sorted({entry.scheme_name for entry in self.entries_sorted()})

    def results_by_key(self) -> Dict[str, Dict[str, Any]]:
        """``key -> canonical result dict`` for every stored job.

        This is the comparison surface for "two stores hold the same
        numbers": it excludes the per-line ``meta`` (wall clock, backend), so
        a serial store and a process-executor store of the same sweep compare
        equal.
        """
        self._ensure_loaded()
        return {key: entry["result"] for key, entry in self._index.items()}

    # -- writing -----------------------------------------------------------------------
    #: keys a pre-encoded result dict must carry to be storable (the
    #: canonical shape minus the wall clock, which moves to ``meta``)
    _REQUIRED_RESULT_KEYS = frozenset(
        {"scheme", "records", "throughput", "availability", "sla_violations", "extras"}
    )

    def put(
        self,
        job: ExperimentJob,
        result: Union[SchemeResult, Mapping[str, Any]],
        meta: Optional[Mapping[str, Any]] = None,
        fsync: Optional[bool] = None,
    ) -> str:
        """Append one computed result; returns the job key.

        ``result`` is a :class:`SchemeResult` or its already-encoded
        ``to_dict``/``canonical_dict`` form.  Accepting the dict directly
        matters on the hot path: executor workers already encoded the result
        once to cross their boundary, and re-hydrating just to re-encode for
        the store would serialise every result a second time.  A dict is
        validated structurally (the canonical key set) — callers on the
        dispatch path have already proven it hydrates — and its
        ``wall_clock_s``, when present, moves into ``meta`` exactly as the
        typed path does, so both paths write byte-identical lines.

        The line goes out as one ``write()`` system call on an unbuffered
        ``O_APPEND`` descriptor, so two processes appending to the same
        store never interleave *within* each other's lines.  The remaining
        failure mode — a single write cut short by ``ENOSPC`` or a kill —
        leaves a truncated *final* line, which the loader drops and
        recomputes (see :meth:`_ensure_loaded`).  With ``fsync`` (per call,
        defaulting to the store's constructor setting) the append is flushed
        to stable storage before returning.

        Re-putting a key that is already stored is allowed only when the
        canonical result is identical (a restarted run recomputing a line it
        already has).  A *different* result for the same content key means
        something that must never happen — the same job computed different
        numbers — so it raises :class:`ResultStoreError` instead of silently
        letting last-write-wins mask the nondeterminism.
        """
        self._ensure_loaded()
        key = job.key
        if isinstance(result, SchemeResult):
            canonical = result.canonical_dict()
            wall_clock_s = float(result.wall_clock_s)
        else:
            canonical = {k: v for k, v in result.items() if k != "wall_clock_s"}
            missing = self._REQUIRED_RESULT_KEYS - set(canonical)
            if missing:
                raise ResultStoreError(
                    f"pre-encoded result for {job.label()} is missing "
                    f"{sorted(missing)}; not a canonical result dict"
                )
            wall_clock_s = float(result.get("wall_clock_s", 0.0))
        existing = self._index.get(key)
        if existing is not None and existing["result"] != canonical:
            raise ResultStoreError(
                f"refusing to overwrite key {key[:12]}… ({job.label()}): the new "
                f"result differs from the stored one — the job is supposed to be "
                f"deterministic, so this indicates nondeterminism or store reuse "
                f"across incompatible code versions"
            )
        entry = {
            "key": key,
            "job": job.to_dict(),
            "result": canonical,
            "meta": dict(meta or {}),
        }
        entry["meta"].setdefault("wall_clock_s", wall_clock_s)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self.path.open("ab", buffering=0) as fh:
            fh.write((line + "\n").encode("utf-8"))
            if self.fsync if fsync is None else fsync:
                os.fsync(fh.fileno())
        self._index[key] = entry
        self._entries_cache = None
        return key

    # -- merging -----------------------------------------------------------------------
    def merge(self, shards: Iterable[Union[str, Path, "ResultStore"]]) -> int:
        """Union shard stores into this one; returns the number of new keys.

        This is the union-of-shards read of the cluster backend: each worker
        appends results to its own write-once JSONL shard, and the merged
        view is simply the union keyed by job content.  Because keys are
        content addresses and jobs are deterministic, a key appearing in
        several shards (a retried job whose first attempt did land, a job
        resubmitted after a coordinator restart) must carry the identical
        canonical result everywhere — duplicates dedup to free cache hits.

        A *conflicting* duplicate — same key, different result — means two
        hosts computed different numbers for the same job, i.e. cross-host
        nondeterminism, and raises :class:`ResultStoreError`.  The whole
        union is staged and validated before anything is written, so a
        conflict in the last shard leaves both the file and the in-memory
        index untouched.

        The commit reuses :meth:`compact`'s atomic tmp-file + ``os.replace``
        rewrite, so a crash mid-merge never leaves a half-merged file.
        """
        self._ensure_loaded()
        staged: Dict[str, Dict[str, Any]] = {}
        origin: Dict[str, str] = {}
        for shard in shards:
            source = shard if isinstance(shard, ResultStore) else ResultStore(shard)
            source._ensure_loaded()
            label = str(source.path)
            for key, entry in source._index.items():
                previous = staged.get(key) or self._index.get(key)
                if previous is not None and previous["result"] != entry["result"]:
                    raise ResultStoreError(
                        f"shard merge conflict on key {key[:12]}…: {label} holds a "
                        f"different result than "
                        f"{origin.get(key, str(self.path))} — the job is supposed "
                        f"to be deterministic, so this indicates cross-host "
                        f"nondeterminism or shard reuse across incompatible "
                        f"code versions"
                    )
                if key not in self._index and key not in staged:
                    staged[key] = entry
                    origin[key] = label
        if not staged:
            return 0
        self._index.update(staged)
        self._entries_cache = None
        self.compact()
        return len(staged)

    @classmethod
    def merged(
        cls,
        shards: Iterable[Union[str, Path, "ResultStore"]],
        into: Union[str, Path],
        fsync: bool = False,
    ) -> "ResultStore":
        """Build (or extend) the store at ``into`` from the union of shards.

        Standalone entry point behind ``repro store merge``: the target may
        already exist (its entries participate in conflict validation) or be
        a fresh path.  Returns the merged store.
        """
        store = cls(into, fsync=fsync)
        store.merge(shards)
        return store

    # -- maintenance -------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the file with one line per key (last write wins).

        Returns the number of surviving entries.  Useful after crashed or
        repeated runs appended duplicate keys.  The rewrite is crash-safe:
        the full new content goes to a temporary sibling file which is then
        atomically ``os.replace`` d into place, so a failure at *any* point
        — mid-write, or in the replace itself — leaves the original JSONL
        byte-identical (and the temporary file cleaned up) rather than
        truncated or half-written.
        """
        self._ensure_loaded()
        lines = [
            json.dumps(self._index[key], sort_keys=True, separators=(",", ":"))
            for key in sorted(self._index)
        ]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".compact.tmp")
        try:
            tmp.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
            os.replace(tmp, self.path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r}, {len(self)} entries)"
