"""repro — a reproduction of SCDA (HPDC 2013).

SCDA is an SLA-aware cloud datacenter architecture for efficient content
storage and retrieval (Fesehaye & Nahrstedt).  This package implements the
full system described in the paper on top of a from-scratch discrete-event,
flow-level datacenter simulator:

* :mod:`repro.sim` — discrete-event simulation kernel (event heap, processes,
  resources, deterministic random streams).
* :mod:`repro.network` — datacenter network substrate: topologies, links with
  queues, routing, flow-level transfers, and transport models (flow-level TCP
  for the RandTCP baseline and the SCDA explicit-rate transport).
* :mod:`repro.core` — the paper's contribution: the SCDA rate metric
  (equations 1-6), resource monitors (RM) and resource allocators (RA), the
  max/min tree exchange, prioritized allocation, reservations, SLA-violation
  detection, and the content-aware server-selection policies.
* :mod:`repro.cluster` — the storage cluster substrate (FES, multiple NNS,
  block servers, clients, replication).
* :mod:`repro.energy` — server power model and dormant-server management.
* :mod:`repro.workloads` — synthetic YouTube-video, datacenter-trace and
  Pareto/Poisson workload generators.
* :mod:`repro.metrics` — FCT / AFCT / throughput / CDF / SLA metrics.
* :mod:`repro.baselines` — RandTCP and related baseline schemes.
* :mod:`repro.registry` — the plugin registries (topologies, workloads,
  schemes, placements) behind the declarative scenario API.
* :mod:`repro.experiments` — the harness that regenerates every figure of the
  paper's evaluation section.

Quickstart
----------
>>> from repro.experiments import ScenarioConfig, run_comparison
>>> cfg = ScenarioConfig.pareto_poisson(sim_time=20.0, seed=1)
>>> result = run_comparison(cfg)
>>> result.speedup_afct() > 1.0
True

Scenarios compose declaratively through the registries (see
``docs/SCENARIOS.md``): any registered topology, workload and scheme can be
combined by string key:

>>> from repro.experiments import ScenarioSpec, run_scenario
>>> spec = ScenarioSpec(topology="fattree", workload="datacenter", sim_time_s=5.0)
>>> run_scenario(spec, schemes=("scda", "rand-tcp")).speedup_afct() > 1.0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
