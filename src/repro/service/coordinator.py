"""The ``repro serve`` coordinator: job submission + store queries over HTTP.

A minimal always-on front end for the execution layer: clients POST job
payloads, the coordinator runs them through
:func:`~repro.exec.executors.run_jobs` (with its configured backend — serial
by default, ``cluster`` when worker hosts are configured) against a single
persistent :class:`~repro.exec.store.ResultStore`, and the store's query API
is exposed read-only over HTTP.  Content-addressed keys make the submission
API idempotent for free: re-POSTing a job that is already stored is a cache
hit, not a recompute.

Endpoints:

``POST /jobs``
    Body ``{"jobs": [<ExperimentJob payload>, ...], "policy": {...}?}``.
    Runs the jobs (cache hits skipped) and answers the
    :meth:`~repro.exec.executors.ExecutionReport.summary` dict plus per-job
    ``{"key", "ok", "error"?}`` statuses.  Submissions are serialised by a
    lock — one batch at a time keeps the store's append path single-writer.

``GET /results``
    Query parameters ``scheme`` and ``ensemble`` filter the store; answers
    ``{"entries": [{"key", "ensemble", "replicate", "scheme", "result"}]}``.

``GET /results/<key>``
    One raw stored line (job + result + meta), 404 when absent.

``GET /healthz`` / ``GET /stats``
    Liveness and counters, mirroring the worker daemon.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exec.executors import resolve_executor, run_jobs
from repro.exec.job import ExperimentJob
from repro.exec.retry import RetryPolicy
from repro.exec.store import ResultStore
from repro.service import protocol
from repro.service.worker import HTTPDaemon


class _CoordinatorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    coordinator: "CoordinatorServer"


class _CoordinatorHandler(BaseHTTPRequestHandler):
    server: _CoordinatorHTTPServer
    protocol_version = "HTTP/1.1"

    @property
    def coordinator(self) -> "CoordinatorServer":
        return self.server.coordinator

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.coordinator.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path == protocol.HEALTH_PATH:
            self._send_json(200, {"status": "ok", **self.coordinator.identity()})
        elif parsed.path == protocol.STATS_PATH:
            self._send_json(200, self.coordinator.stats())
        elif parsed.path == protocol.RESULTS_PATH:
            query = urllib.parse.parse_qs(parsed.query)
            entries = self.coordinator.query_entries(
                scheme=(query.get("scheme") or [None])[0],
                ensemble=(query.get("ensemble") or [None])[0],
            )
            self._send_json(200, {"entries": entries})
        elif parsed.path.startswith(protocol.RESULTS_PATH + "/"):
            key = parsed.path[len(protocol.RESULTS_PATH) + 1 :]
            entry = self.coordinator.entry(key)
            if entry is None:
                self._send_json(404, {"error": f"no stored result for key {key!r}"})
            else:
                self._send_json(200, entry)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == protocol.JOBS_PATH:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                request = json.loads(raw.decode("utf-8")) if raw else None
                if not isinstance(request, dict):
                    raise ValueError("body must be a JSON object")
            except ValueError as exc:
                self._send_json(400, {"error": f"bad request body: {exc}"})
                return
            try:
                answer = self.coordinator.submit(request)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(200, answer)
        elif self.path == protocol.SHUTDOWN_PATH:
            self._send_json(200, {"status": "stopping", **self.coordinator.identity()})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})


class CoordinatorServer(HTTPDaemon):
    """The serve-mode daemon: one store, one backend, an HTTP front end.

    Parameters
    ----------
    store_path:
        The persistent :class:`ResultStore` all submissions land in.
    executor:
        Registry key for the backend submissions run on (``serial``,
        ``process``, ``cluster``, ``chaos:...``).
    max_workers / batch_size:
        Forwarded to :func:`~repro.exec.executors.run_jobs`.
    pool:
        Worker-pool lifecycle of the backend.  An always-on daemon is
        exactly where warm pools pay off — every submitted batch reuses the
        same workers — so the default here is ``"keep"`` (unlike the
        library default of ``"fresh"``); the retained workers are shut down
        by :meth:`stop`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_path: Union[str, Path] = "results.jsonl",
        executor: str = "serial",
        max_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        verbose: bool = False,
        pool: str = "keep",
    ) -> None:
        self.httpd = _CoordinatorHTTPServer((host, port), _CoordinatorHandler)
        self.httpd.coordinator = self
        self.host = host
        self.port = int(self.httpd.server_address[1])
        self.store = ResultStore(store_path)
        self.executor = executor
        self.max_workers = max_workers
        self.batch_size = batch_size
        self.verbose = bool(verbose)
        # One executor instance for the daemon's lifetime: with pool="keep"
        # the process backend's workers stay warm across POST /jobs batches
        # instead of respawning (and re-importing the simulator) per batch.
        self.backend = resolve_executor(
            executor, max_workers=max_workers, batch_size=batch_size, pool=pool
        )
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._counters = {"batches": 0, "computed": 0, "cached": 0, "failed": 0}
        self._wire_totals: Dict[str, float] = {}
        self._thread: Optional[threading.Thread] = None

    def stop(self) -> None:
        """Stop serving and release the backend's warm workers."""
        super().stop()
        self.backend.close()

    # -- request logic -----------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        return {
            "coordinator": f"{self.host}:{self.port}",
            "store": str(self.store.path),
            "executor": self.executor,
        }

    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            counters = dict(self._counters)
        pool_stats = getattr(self.backend, "stats", None)
        with self._stats_lock:
            wire_totals = dict(self._wire_totals)
        return {
            **self.identity(),
            **counters,
            "store_entries": len(self.store),
            "kernel": self._kernel_stats(),
            # Serialization counters summed over every batch this daemon ran
            # (the per-run ExecutionReport "wire" dicts), plus the warm-pool
            # lifetime counters when the backend has a pool.
            "wire": wire_totals,
            "pool": pool_stats() if callable(pool_stats) else {},
        }

    def _kernel_stats(self) -> Dict[str, float]:
        """Sum the per-run ``kernel_*`` perf extras across all stored results.

        Gives the daemon's ``/stats`` endpoint a fleet-wide view of solver
        behaviour — incremental vs full solve counts, dirty-region sizes,
        churn coalescing — so a slow batch can be diagnosed remotely without
        pulling every result payload.
        """
        totals: Dict[str, float] = {}
        with self._submit_lock:
            entries = self.store.query()
        for entry in entries:
            for key, value in entry.result.extras.items():
                if not key.startswith("kernel_") or not isinstance(value, (int, float)):
                    continue
                if key.endswith("_max"):
                    totals[key] = max(totals.get(key, 0.0), float(value))
                else:
                    totals[key] = totals.get(key, 0.0) + float(value)
        return totals

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run one submitted batch; returns the report summary + job statuses."""
        payloads = request.get("jobs")
        if not isinstance(payloads, list) or not payloads:
            raise ValueError('body must carry a non-empty "jobs" list')
        jobs = []
        for position, payload in enumerate(payloads):
            try:
                jobs.append(ExperimentJob.from_dict(payload))
            except Exception as exc:  # noqa: BLE001 - reported as a 400
                # A payload that does not even hydrate (unknown registry
                # key, malformed spec) is a client error, not a job failure:
                # job failures presume a job that could run.
                raise ValueError(f"jobs[{position}] does not hydrate: {exc}") from exc
        policy = None
        if request.get("policy") is not None:
            try:
                policy = RetryPolicy.from_dict(request["policy"])
            except Exception as exc:  # noqa: BLE001 - reported as a 400
                raise ValueError(f"bad retry policy: {exc}") from exc
        with self._submit_lock:
            report = run_jobs(
                jobs,
                executor=self.backend,
                store=self.store,
                policy=policy,
                raise_on_error=False,
            )
        failed = {failure.job.key: str(failure) for failure in report.failures}
        statuses: List[Dict[str, Any]] = []
        for job in jobs:
            status: Dict[str, Any] = {"key": job.key, "ok": job.key not in failed}
            if job.key in failed:
                status["error"] = failed[job.key]
            statuses.append(status)
        with self._stats_lock:
            self._counters["batches"] += 1
            self._counters["computed"] += report.computed
            self._counters["cached"] += report.cached
            self._counters["failed"] += len(report.failures)
            for key, value in report.wire.items():
                self._wire_totals[key] = self._wire_totals.get(key, 0.0) + value
        return {"summary": report.summary(), "jobs": statuses}

    def query_entries(
        self, scheme: Optional[str] = None, ensemble: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        with self._submit_lock:
            selected = self.store.query(scheme=scheme, ensemble=ensemble)
        return [
            {
                "key": entry.key,
                "ensemble": entry.ensemble,
                "replicate": entry.replicate,
                "scheme": entry.scheme_name,
                "result": entry.result.canonical_dict(),
            }
            for entry in selected
        ]

    def entry(self, key: str) -> Optional[Dict[str, Any]]:
        with self._submit_lock:
            return self.store.entry(key)

__all__ = ["CoordinatorServer"]
