"""The cluster worker daemon: one HTTP process, one write-once result shard.

``repro worker --port P --shard-dir D`` runs one of these per host (or
several per host on distinct ports).  The design follows the PYME cluster
filesystem pattern: every node owns a local shard it alone appends to, writes
are atomic single-``write()`` line appends, and the global view is the
*union* of shards computed at merge time — no cluster-wide locking, no
coordinator in the data path.

The daemon is deliberately thin: ``POST /jobs`` feeds payloads through the
same :func:`~repro.exec.executors.execute_job_chunk` funnel every other
backend uses, so a job computes identical bytes whether it ran serially,
in a pool worker, or here.  Successful canonical results are appended to the
shard *before* the response goes out — once a client has seen an outcome,
the result is durable on the worker, and a retried/duplicated job dedups to
a free re-put (identical result) while a *conflicting* re-put surfaces as a
non-retryable ``ResultStoreError`` outcome, making cross-host nondeterminism
an error instead of a silent last-write-wins.

Chaos envelopes (``__chaos__``, attached by ``chaos:cluster``) are
interpreted inside :func:`execute_job_payload` as usual; injected crashes
surface as retryable ``ChaosCrashError`` outcomes rather than killing the
daemon (the cluster backend is not in ``_CRASH_OK_BACKENDS`` — a shared
daemon must survive a poisoned job).  Corrupt-mode results fail result
hydration here and are returned *without* touching the shard, so injected
corruption can never poison the write-once data.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exec.executors import execute_job_chunk
from repro.exec.job import ExperimentJob
from repro.exec.store import ResultStore, ResultStoreError
from repro.metrics.codec import (
    WIRE_COLUMNAR,
    WIRE_FORMATS,
    WIRE_JSON,
    CodecError,
    encode_wire_outcome,
)
from repro.metrics.comparison import SchemeResult
from repro.service import protocol


def shard_filename(host: str, port: int) -> str:
    """The shard file name of the worker bound to ``host:port``.

    Deterministic per endpoint so a restarted worker resumes appending to
    (and conflict-checking against) its own previous shard.
    """
    return f"shard-{host.replace(':', '_')}-{port}.jsonl"


class HTTPDaemon:
    """Shared serve/start/stop lifecycle of the worker and coordinator daemons.

    Subclasses provide ``self.httpd`` (an ``http.server`` instance); the
    mixin adds blocking ``serve_forever``, background ``start``/``stop`` for
    in-process daemons (tests, benchmarks), and context-manager sugar.
    """

    httpd: ThreadingHTTPServer
    _thread: Optional[threading.Thread] = None

    def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or ``POST /shutdown``); blocks."""
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()

    def start(self) -> "HTTPDaemon":
        """Serve on a daemon thread (in-process daemons for tests/benchmarks)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the background thread, if any."""
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "HTTPDaemon":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class _WorkerHTTPServer(ThreadingHTTPServer):
    """The socket server; carries a back-reference to its :class:`WorkerServer`."""

    daemon_threads = True
    worker: "WorkerServer"


class _WorkerHandler(BaseHTTPRequestHandler):
    """Request handler; all state lives on ``self.server.worker``."""

    server: _WorkerHTTPServer
    protocol_version = "HTTP/1.1"

    @property
    def worker(self) -> "WorkerServer":
        return self.server.worker

    # -- plumbing ----------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.worker.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw.decode("utf-8"))

    # -- routes ------------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == protocol.HEALTH_PATH:
            self._send_json(200, {"status": "ok", **self.worker.identity()})
        elif self.path == protocol.STATS_PATH:
            self._send_json(200, self.worker.stats())
        elif self.path == protocol.SHARD_PATH:
            body = self.worker.shard_bytes()
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == protocol.JOBS_PATH:
            try:
                request = self._read_json()
            except ValueError as exc:
                self._send_json(400, {"error": f"bad request body: {exc}"})
                return
            try:
                payloads = self.worker.coerce_payloads(request)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            # Wire negotiation: the client opts in via the request body's
            # "wire" field; this worker honours it only when it speaks
            # columnar itself.  Older clients send no field and get plain
            # JSON; older workers ignore the field for the same effect.
            requested = request.get("wire") if isinstance(request, dict) else None
            wire = self.worker.negotiate_wire(requested)
            outcomes = self.worker.run_chunk(payloads, wire=wire)
            self._send_json(200, {"outcomes": outcomes, "wire": wire})
        elif self.path == protocol.SHUTDOWN_PATH:
            self._send_json(200, {"status": "stopping", **self.worker.identity()})
            # shutdown() blocks until serve_forever returns, so it must not
            # run on a handler thread that serve_forever is waiting on.
            threading.Thread(target=self.server.shutdown, daemon=True).start()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})


class WorkerServer(HTTPDaemon):
    """One worker daemon: a threading HTTP server plus its local shard store.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (tests); the
        chosen port is available as :attr:`port` afterwards.
    shard_dir:
        Directory holding this worker's write-once JSONL shard (created on
        first result).  The file name is deterministic per endpoint, see
        :func:`shard_filename`.
    fsync:
        Per-append durability of the shard store (off by default, like
        :class:`~repro.exec.store.ResultStore`).
    verbose:
        Log one line per request to stderr (the CLI's ``--verbose``).
    wire:
        The richest result transfer encoding this worker will speak.
        ``"columnar"`` (default) column-packs successful results when the
        request asks for it (see :mod:`repro.metrics.codec`); ``"json"``
        makes the worker answer plain dicts unconditionally — the switch
        that emulates (and tests against) a pre-codec worker.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_dir: Union[str, Path] = ".",
        fsync: bool = False,
        verbose: bool = False,
        wire: str = WIRE_COLUMNAR,
    ) -> None:
        if wire not in WIRE_FORMATS:
            raise ValueError(f"wire must be one of {WIRE_FORMATS}, got {wire!r}")
        self.httpd = _WorkerHTTPServer((host, port), _WorkerHandler)
        self.httpd.worker = self
        self.host = host
        self.port = int(self.httpd.server_address[1])
        self.shard_dir = Path(shard_dir)
        self.shard_path = self.shard_dir / shard_filename(self.host, self.port)
        self.store = ResultStore(self.shard_path, fsync=fsync)
        self.verbose = bool(verbose)
        self.wire = wire
        self._store_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, Any] = {
            "chunks": 0,
            "jobs_ok": 0,
            "jobs_failed": 0,
            "shard_conflicts": 0,
            "columnar_chunks": 0,
            "wire_results": 0,
            "wire_bytes": 0,
            "wire_encode_s": 0.0,
        }
        self._thread: Optional[threading.Thread] = None

    # -- request logic -----------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        return {
            "worker": f"{self.host}:{self.port}",
            "shard": str(self.shard_path),
            "wire": self.wire,
        }

    def negotiate_wire(self, requested: Any) -> str:
        """The transfer encoding for a request asking for ``requested``."""
        if requested == WIRE_COLUMNAR and self.wire == WIRE_COLUMNAR:
            return WIRE_COLUMNAR
        return WIRE_JSON

    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            counters = dict(self._counters)
        with self._store_lock:
            shard_entries = len(self.store)
        return {**self.identity(), **counters, "shard_entries": shard_entries}

    def shard_bytes(self) -> bytes:
        with self._store_lock:
            if not self.shard_path.exists():
                return b""
            return self.shard_path.read_bytes()

    @staticmethod
    def coerce_payloads(request: Any) -> List[Dict[str, Any]]:
        """Normalise a ``POST /jobs`` body to a list of job payload dicts."""
        if isinstance(request, dict) and "jobs" in request:
            payloads = request["jobs"]
        elif isinstance(request, dict):
            payloads = [request]
        else:
            payloads = request
        if not isinstance(payloads, list) or not all(
            isinstance(p, dict) for p in payloads
        ):
            raise ValueError('body must be a job payload or {"jobs": [payload, ...]}')
        if not payloads:
            raise ValueError("empty job chunk")
        return payloads

    def run_chunk(
        self, payloads: List[Dict[str, Any]], wire: str = WIRE_JSON
    ) -> List[Dict[str, Any]]:
        """Run one chunk and persist successful results to the shard.

        Jobs always execute (and persist) against the plain result dict —
        the shard's bytes are wire-independent.  With ``wire="columnar"``
        each successful outcome is then column-packed for the response; a
        result the strict codec rejects (chaos corruption) ships plain, so
        the client's corruption detection still fires.  Encoder-side perf
        counters accumulate into this worker's ``GET /stats``.
        """
        outcomes = execute_job_chunk(payloads)
        persisted = []
        for payload, outcome in zip(payloads, outcomes):
            persisted.append(self._persist(payload, outcome))
        ok = sum(1 for outcome in persisted if outcome.get("ok"))
        encoded_results = 0
        encoded_bytes = 0
        encode_s = 0.0
        if wire == WIRE_COLUMNAR:
            shipped = []
            for outcome in persisted:
                if outcome.get("ok"):
                    try:
                        envelope = encode_wire_outcome(outcome["result"])
                    except CodecError:
                        shipped.append(outcome)
                        continue
                    encoded_results += 1
                    encoded_bytes += envelope["wire_bytes"]
                    encode_s += envelope["encode_s"]
                    shipped.append(envelope)
                else:
                    shipped.append(outcome)
            persisted = shipped
        with self._stats_lock:
            self._counters["chunks"] += 1
            self._counters["jobs_ok"] += ok
            self._counters["jobs_failed"] += len(persisted) - ok
            if wire == WIRE_COLUMNAR:
                self._counters["columnar_chunks"] += 1
                self._counters["wire_results"] += encoded_results
                self._counters["wire_bytes"] += encoded_bytes
                self._counters["wire_encode_s"] += encode_s
        return persisted

    def _persist(
        self, payload: Dict[str, Any], outcome: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Append one successful outcome to the shard; returns the outcome.

        Results that do not hydrate (chaos corruption) pass through
        *without* touching the shard — the client converts them to
        retryable ``CorruptResultError`` failures.  A conflicting re-put
        (same content key, different result) converts the outcome into a
        non-retryable ``ResultStoreError`` failure: two hosts computing
        different numbers for one job is a bug, not a transient.
        """
        if not outcome.get("ok"):
            return outcome
        try:
            job = ExperimentJob.from_dict(payload)
            SchemeResult.from_dict(outcome["result"])  # hydration gate only
        except Exception:  # noqa: BLE001 - corrupt payloads never reach the shard
            return outcome
        try:
            with self._store_lock:
                # The outcome dict just proved it hydrates; store it as-is
                # instead of re-encoding the hydrated object (see
                # ResultStore.put's pre-encoded path).
                self.store.put(
                    job,
                    outcome["result"],
                    meta={"executor": "worker", **self.identity()},
                )
        except ResultStoreError as exc:
            with self._stats_lock:
                self._counters["shard_conflicts"] += 1
            return {
                "ok": False,
                "error": str(exc),
                "exc_type": "ResultStoreError",
                "traceback": "",
            }
        return outcome

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)


__all__ = ["HTTPDaemon", "WorkerServer", "shard_filename"]
