"""Wire protocol of the cluster execution service.

Everything that crosses the network is JSON over plain HTTP/1.1, spoken with
nothing but the standard library (``urllib.request`` on the client side,
``http.server`` on the worker/coordinator side) — the service adds no
dependencies to the repo.

Endpoints (see :mod:`repro.service.worker` / :mod:`repro.service.coordinator`
for the servers):

``POST /jobs``
    Body ``{"jobs": [<ExperimentJob payload>, ...]}`` (a bare payload dict is
    accepted as a chunk of one).  The worker runs each payload through
    :func:`~repro.exec.executors.execute_job_payload`, appends successful
    canonical results to its write-once JSONL shard, and answers
    ``{"outcomes": [...], "wire": "<format>"}`` with one
    :func:`~repro.exec.executors.execute_job_chunk`-style outcome per job,
    in order.  Job failures travel *in-band* as ``{"ok": False, "error",
    "exc_type", "traceback"}`` outcomes — an HTTP error status always means
    the transport or the protocol broke, never that a job raised.

    Wire negotiation (:data:`WIRE_KEY`): a client may add ``"wire":
    "columnar"`` to the body to request column-packed result payloads (the
    lossless codec of :mod:`repro.metrics.codec` — typically 2-4x smaller
    bodies).  A worker that speaks columnar answers encoded payloads marked
    with the codec's reserved key; a pre-codec (or ``--wire json``) worker
    simply ignores the unknown field and answers plain dicts.  Because the
    *payload marker*, not the request, drives decoding on the client, every
    client/worker version pairing interoperates — new↔old degrades to plain
    JSON with zero configuration.  The response's ``"wire"`` field reports
    what the worker chose (absent from pre-codec workers).

``GET /healthz``
    ``{"status": "ok", ...}`` — liveness probe used by discovery gating.

``GET /stats``
    Counters: jobs run/failed, chunks served, shard path and size.

``GET /shard``
    The worker's shard file, streamed verbatim as ``application/x-ndjson``
    for :meth:`~repro.exec.store.ResultStore.merge`.

``POST /shutdown``
    Acknowledge, then stop serving (used by tests and CI teardown).

Client-side failure mapping (:func:`http_json`) folds transport failures into
the executor layer's existing retry vocabulary, because exception *class
names* are what :class:`~repro.exec.retry.RetryPolicy` classifies:

* request/read timeout → :class:`~repro.exec.retry.JobTimeoutError`
* connection refused/reset/dropped → :class:`~repro.exec.retry.WorkerCrashError`
  (the worker process is gone, exactly like a killed pool worker)
* anything else (bad status, non-JSON body, malformed URL) →
  :class:`~repro.exec.retry.ClusterTransportError`

All three names are in :data:`~repro.exec.retry.DEFAULT_RETRYABLE`, so a
flaky exchange is retried with the same deterministic backoff as a local
crash.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.exec.retry import ClusterTransportError, JobTimeoutError, WorkerCrashError

#: Paths served by the worker daemon.
JOBS_PATH = "/jobs"
HEALTH_PATH = "/healthz"
STATS_PATH = "/stats"
SHARD_PATH = "/shard"
SHUTDOWN_PATH = "/shutdown"
#: Additional paths served by the coordinator.
RESULTS_PATH = "/results"

#: Body field carrying the requested/chosen wire format on ``POST /jobs``.
WIRE_KEY = "wire"

#: Default socket timeout for control-plane calls (health checks, stats).
CONTROL_TIMEOUT_S = 5.0


def http_json(
    method: str,
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout_s: Optional[float] = None,
) -> Any:
    """One JSON-in/JSON-out HTTP exchange, with retry-vocabulary failures.

    ``timeout_s`` bounds the whole exchange via the socket timeout
    (``None``: wait indefinitely, mirroring a policy without ``timeout_s``).
    Raises :class:`JobTimeoutError` / :class:`WorkerCrashError` /
    :class:`ClusterTransportError` as documented in the module docstring;
    never returns a partially-parsed body.
    """
    body = (
        None
        if payload is None
        else json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    headers = {"Content-Type": "application/json"} if body is not None else {}
    request = urllib.request.Request(url, data=body, method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            raw = response.read()
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = exc.read().decode("utf-8", "replace")[:200]
        except Exception:  # noqa: BLE001 - the status code is the real signal
            pass
        raise ClusterTransportError(
            f"{method} {url} answered HTTP {exc.code}: {detail or exc.reason}"
        ) from exc
    except urllib.error.URLError as exc:
        reason = exc.reason
        if isinstance(reason, (socket.timeout, TimeoutError)):
            raise JobTimeoutError(
                f"{method} {url} timed out after {timeout_s:g}s"
                if timeout_s is not None
                else f"{method} {url} timed out"
            ) from exc
        if isinstance(reason, ConnectionError):
            raise WorkerCrashError(f"{method} {url}: worker unreachable ({reason!r})") from exc
        raise ClusterTransportError(f"{method} {url} failed ({reason!r})") from exc
    except (socket.timeout, TimeoutError) as exc:
        raise JobTimeoutError(
            f"{method} {url} timed out after {timeout_s:g}s"
            if timeout_s is not None
            else f"{method} {url} timed out"
        ) from exc
    except ConnectionError as exc:
        # Includes http.client.RemoteDisconnected — the server vanished
        # mid-exchange, i.e. the worker process died under us.
        raise WorkerCrashError(f"{method} {url}: connection lost ({exc!r})") from exc
    except http.client.HTTPException as exc:
        raise ClusterTransportError(f"{method} {url}: malformed response ({exc!r})") from exc
    except (ValueError, OSError) as exc:
        raise ClusterTransportError(f"{method} {url} failed ({exc!r})") from exc
    try:
        return json.loads(raw.decode("utf-8"))
    except ValueError as exc:
        raise ClusterTransportError(
            f"{method} {url} returned a non-JSON body ({exc})"
        ) from exc


def http_text(url: str, timeout_s: Optional[float] = CONTROL_TIMEOUT_S) -> str:
    """Fetch a raw text body (the ``GET /shard`` stream) with the same mapping."""
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            return response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        raise ClusterTransportError(f"GET {url} answered HTTP {exc.code}") from exc
    except urllib.error.URLError as exc:
        reason = exc.reason
        if isinstance(reason, (socket.timeout, TimeoutError)):
            raise JobTimeoutError(f"GET {url} timed out") from exc
        if isinstance(reason, ConnectionError):
            raise WorkerCrashError(f"GET {url}: worker unreachable ({reason!r})") from exc
        raise ClusterTransportError(f"GET {url} failed ({reason!r})") from exc
    except (socket.timeout, TimeoutError) as exc:
        raise JobTimeoutError(f"GET {url} timed out") from exc
    except ConnectionError as exc:
        raise WorkerCrashError(f"GET {url}: connection lost ({exc!r})") from exc
    except (http.client.HTTPException, ValueError, OSError) as exc:
        raise ClusterTransportError(f"GET {url} failed ({exc!r})") from exc


__all__ = [
    "CONTROL_TIMEOUT_S",
    "HEALTH_PATH",
    "JOBS_PATH",
    "RESULTS_PATH",
    "SHARD_PATH",
    "SHUTDOWN_PATH",
    "STATS_PATH",
    "WIRE_KEY",
    "http_json",
    "http_text",
]
