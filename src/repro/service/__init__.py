"""Multi-host cluster execution service.

The network layer of the execution stack, modelled on the PYME cluster
filesystem pattern: per-node HTTP daemons, write-once local result shards,
union-of-shards merging, no cluster-wide locking.

* :mod:`~repro.service.protocol` — the JSON-over-HTTP wire protocol and the
  stdlib client with retry-vocabulary failure mapping;
* :mod:`~repro.service.worker` — the ``repro worker`` daemon: runs job
  chunks through the shared execution funnel, appends canonical results to
  its local shard;
* :mod:`~repro.service.discovery` — static ``host:port`` configuration
  (flags, hosts file, environment) with health-check gating;
* :mod:`~repro.service.coordinator` — the ``repro serve`` daemon: HTTP job
  submission plus the :class:`~repro.exec.store.ResultStore` query API.

The matching client is :class:`~repro.exec.cluster.ClusterExecutor`, the
``cluster`` entry of the ``EXECUTORS`` registry.  See ``docs/CLUSTER.md``.
"""

from repro.service.discovery import WorkerEndpoint, configured_endpoints, discover_workers
from repro.service.worker import WorkerServer, shard_filename

__all__ = [
    "WorkerEndpoint",
    "WorkerServer",
    "configured_endpoints",
    "discover_workers",
    "shard_filename",
]
