"""Static worker discovery with health-check gating.

The cluster backend learns its workers from configuration, not gossip: a
``host:port`` list given directly (``--hosts``), a hosts file (``--hosts-file``,
one endpoint per line, ``#`` comments), or — so the setting survives the
registry's ``build(key, max_workers=...)`` resolution path and composes with
wrapper syntax like ``chaos:cluster`` — the environment:

* ``REPRO_CLUSTER_HOSTS`` — comma/whitespace-separated ``host:port`` list
* ``REPRO_CLUSTER_HOSTS_FILE`` — path to a hosts file

Before any job is dispatched, every configured endpoint is health-checked
(``GET /healthz``) and only live workers enter the rotation; an entirely
unreachable cluster raises
:class:`~repro.exec.retry.ExecutorDegradedError` so
:func:`~repro.exec.executors.run_jobs` can degrade to the local process
backend instead of failing the run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.service import protocol

#: Environment channel for cluster configuration (see module docstring).
HOSTS_ENV = "REPRO_CLUSTER_HOSTS"
HOSTS_FILE_ENV = "REPRO_CLUSTER_HOSTS_FILE"


@dataclass(frozen=True)
class WorkerEndpoint:
    """One worker address (``host:port``)."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("worker host must be non-empty")
        if not 0 < self.port < 65536:
            raise ValueError(f"worker port out of range: {self.port}")

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def url(self, path: str) -> str:
        return self.base_url + path

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


def parse_endpoint(text: str) -> WorkerEndpoint:
    """``"host:port"`` (or ``"http://host:port"``) → :class:`WorkerEndpoint`."""
    spec = text.strip()
    for prefix in ("http://", "https://"):
        if spec.startswith(prefix):
            spec = spec[len(prefix):].rstrip("/")
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad worker endpoint {text!r}: expected host:port")
    return WorkerEndpoint(host=host, port=int(port))


def parse_hosts(text: str) -> List[WorkerEndpoint]:
    """A comma/whitespace-separated endpoint list → endpoints, order kept."""
    entries = [piece for chunk in text.split(",") for piece in chunk.split()]
    return [parse_endpoint(entry) for entry in entries if entry]


def read_hosts_file(path: Union[str, Path]) -> List[WorkerEndpoint]:
    """Endpoints from a hosts file: one per line, blank lines and ``#`` comments."""
    endpoints: List[WorkerEndpoint] = []
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if line:
            endpoints.append(parse_endpoint(line))
    return endpoints


def configured_endpoints(
    hosts: Optional[Union[str, Sequence[Union[str, WorkerEndpoint]]]] = None,
    hosts_file: Optional[Union[str, Path]] = None,
) -> List[WorkerEndpoint]:
    """Resolve the configured endpoint list; explicit beats environment.

    Precedence: ``hosts`` > ``hosts_file`` > ``$REPRO_CLUSTER_HOSTS`` >
    ``$REPRO_CLUSTER_HOSTS_FILE``.  Returns ``[]`` when nothing is
    configured (the caller decides whether that is an error).
    """
    if hosts is not None:
        if isinstance(hosts, str):
            return parse_hosts(hosts)
        return [
            entry if isinstance(entry, WorkerEndpoint) else parse_endpoint(entry)
            for entry in hosts
        ]
    if hosts_file is not None:
        return read_hosts_file(hosts_file)
    env_hosts = os.environ.get(HOSTS_ENV)
    if env_hosts:
        return parse_hosts(env_hosts)
    env_file = os.environ.get(HOSTS_FILE_ENV)
    if env_file:
        return read_hosts_file(env_file)
    return []


def health_check(
    endpoint: WorkerEndpoint, timeout_s: float = protocol.CONTROL_TIMEOUT_S
) -> bool:
    """Whether ``GET /healthz`` answers ``{"status": "ok"}`` within the budget."""
    try:
        answer = protocol.http_json(
            "GET", endpoint.url(protocol.HEALTH_PATH), timeout_s=timeout_s
        )
    except Exception:  # noqa: BLE001 - any failure means "not live"
        return False
    return isinstance(answer, dict) and answer.get("status") == "ok"


def discover_workers(
    endpoints: Iterable[WorkerEndpoint],
    timeout_s: float = protocol.CONTROL_TIMEOUT_S,
) -> List[WorkerEndpoint]:
    """The subset of ``endpoints`` that pass the health check, order kept."""
    return [endpoint for endpoint in endpoints if health_check(endpoint, timeout_s)]


__all__ = [
    "HOSTS_ENV",
    "HOSTS_FILE_ENV",
    "WorkerEndpoint",
    "configured_endpoints",
    "discover_workers",
    "health_check",
    "parse_endpoint",
    "parse_hosts",
    "read_hosts_file",
]
