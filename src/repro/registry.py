"""Plugin registries: pluggable topologies, workloads, schemes and placements.

The paper's evaluation is a cross-product of (topology, workload, transport
scheme); this module is the composition layer that makes every axis of that
cross-product a *named*, *registered* plugin instead of a hard-wired import.
Seven registries cover the axes (plus how the product is executed, how the
world changes mid-run, and how stored results are analysed):

* :data:`TOPOLOGIES` — fabric builders (``tree``, ``fattree``, ``vl2``,
  ``leafspine``), each paired with its config dataclass;
* :data:`WORKLOADS` — trace generators (``video``, ``datacenter``,
  ``pareto-poisson``);
* :data:`SCHEMES` — (placement, transport) scheme specs (``scda``,
  ``rand-tcp``, ``ideal``, ``vlb``, ``hedera`` and the ablations);
* :data:`PLACEMENTS` — server-selection policies (``random``,
  ``round-robin``, ``least-loaded``, ``scda``);
* :data:`EXECUTORS` — execution backends for planned job lists (``serial``,
  ``thread``, ``process``; see :mod:`repro.exec`);
* :data:`DYNAMICS` — timed world-mutation events (``link-failure``,
  ``link-recovery``, ``capacity-degradation``, ``block-server-churn``,
  ``workload-surge``; see :mod:`repro.dynamics`);
* :data:`ANALYSES` — store-driven analyses (``scheme-comparison``,
  ``sweep-summary``, ``fct-cdf``, ``availability``; see
  :mod:`repro.analysis.store_analyses`), each a pure function from a
  :class:`~repro.exec.store.ResultStore` query to a serialisable artifact.

Built-in entries are registered by the per-domain catalog modules
(:mod:`repro.network.catalog`, :mod:`repro.workloads.catalog`,
:mod:`repro.baselines.catalog`, :mod:`repro.cluster.catalog`,
:mod:`repro.dynamics.catalog`, :mod:`repro.analysis.catalog`), which are
imported lazily the first time a registry is read.  Third-party code extends
the system with one call and no runner patch::

    from repro.registry import TOPOLOGIES

    @TOPOLOGIES.register("my-fabric", config_cls=MyFabricConfig)
    def build_my_fabric(config=None):
        ...

after which ``ScenarioSpec(topology="my-fabric", ...)``, the sweeps and the
CLI (``--topology my-fabric``) all pick it up.  See ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple


class RegistryError(LookupError):
    """Unknown name, duplicate registration, or invalid plugin parameters."""


def _normalise(name: str) -> str:
    """Canonical registry key: case-insensitive, ``_`` and ``-`` equivalent."""
    return str(name).strip().lower().replace("_", "-")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered plugin: a builder plus its config dataclass."""

    name: str
    builder: Callable[..., Any]
    config_cls: Optional[type] = None
    description: str = ""
    aliases: Tuple[str, ...] = ()

    def make_config(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Instantiate this entry's config dataclass from plain parameters.

        Returns ``None`` when the entry has no config class and no parameters
        were given; raises :class:`RegistryError` (listing the valid field
        names) when ``params`` contains keys the config does not accept.
        """
        params = dict(params or {})
        if self.config_cls is None:
            if params:
                raise RegistryError(
                    f"{self.name!r} takes no parameters but got {sorted(params)}"
                )
            return None
        if is_dataclass(self.config_cls):
            valid = {f.name for f in dataclass_fields(self.config_cls)}
            unknown = sorted(set(params) - valid)
            if unknown:
                raise RegistryError(
                    f"unknown parameter(s) {unknown} for {self.name!r} "
                    f"({self.config_cls.__name__}); valid fields: {sorted(valid)}"
                )
        try:
            return self.config_cls(**params)
        except (TypeError, ValueError) as exc:
            raise RegistryError(
                f"invalid parameters for {self.name!r} "
                f"({self.config_cls.__name__}): {exc}"
            ) from exc


class Registry:
    """A named collection of plugins with helpful unknown-key errors.

    Parameters
    ----------
    kind:
        Human-readable singular noun used in error messages ("topology",
        "workload", ...).
    bootstrap:
        Optional callable importing the built-in catalog modules; invoked at
        most once, lazily, before the first *read* operation so that built-in
        entries are always visible without import-order gymnastics.
    """

    def __init__(self, kind: str, bootstrap: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}
        self._bootstrap = bootstrap
        self._bootstrapped = bootstrap is None

    # -- registration ------------------------------------------------------------------
    def register(
        self,
        name: str,
        builder: Optional[Callable[..., Any]] = None,
        *,
        config_cls: Optional[type] = None,
        description: str = "",
        aliases: Tuple[str, ...] = (),
        replace: bool = False,
    ):
        """Register ``builder`` under ``name``; usable as a decorator.

        Raises :class:`RegistryError` on duplicate names or aliases unless
        ``replace=True`` is passed explicitly.
        """
        if builder is None:

            def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
                self.register(
                    name,
                    fn,
                    config_cls=config_cls,
                    description=description,
                    aliases=aliases,
                    replace=replace,
                )
                return fn

            return decorator

        # Load the built-ins first so that registrations at plain import time
        # see them: the duplicate check is meaningful and ``replace=True``
        # actually overrides the built-in entry.  (Re-entrant registrations
        # from the catalogs themselves skip this: the flag is already set.)
        self._ensure_bootstrapped()

        key = _normalise(name)
        taken = key in self._entries or key in self._aliases
        if taken and not replace:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override it"
            )
        if replace and key in self._aliases:
            # Replacing via an alias would leave the original entry dangling.
            raise RegistryError(
                f"{name!r} is an alias of {self._aliases[key]!r}; "
                f"replace the canonical {self.kind} name instead"
            )
        entry = RegistryEntry(
            name=key,
            builder=builder,
            config_cls=config_cls,
            description=description,
            aliases=tuple(_normalise(a) for a in aliases),
        )
        # Validate the aliases *before* mutating anything, so a failed
        # registration leaves the registry untouched.
        for alias in entry.aliases:
            owner = self._aliases.get(alias)
            if alias in self._entries or (owner is not None and owner != key):
                raise RegistryError(
                    f"{self.kind} alias {alias!r} collides with an existing registration"
                )
        if replace and key in self._entries:
            # Drop the replaced entry's aliases; the new entry declares its own.
            for alias in self._entries[key].aliases:
                self._aliases.pop(alias, None)
        self._entries[key] = entry
        for alias in entry.aliases:
            self._aliases[alias] = key
        return builder

    # -- lookup ------------------------------------------------------------------------
    def _ensure_bootstrapped(self) -> None:
        if not self._bootstrapped:
            self._bootstrapped = True  # set first: the catalogs may read back
            assert self._bootstrap is not None
            try:
                self._bootstrap()
            except BaseException:
                # Don't latch a failed bootstrap: the next touch retries the
                # catalog imports, so callers keep seeing the root-cause
                # import error instead of an inexplicably empty registry.
                self._bootstrapped = False
                raise

    def get(self, name: str) -> RegistryEntry:
        """The entry registered under ``name`` (or one of its aliases)."""
        self._ensure_bootstrapped()
        key = _normalise(name)
        key = self._aliases.get(key, key)
        entry = self._entries.get(key)
        if entry is None:
            available = ", ".join(self.names()) or "<none registered>"
            close = difflib.get_close_matches(key, list(self._entries), n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise RegistryError(
                f"unknown {self.kind} {name!r} (available: {available}){hint}"
            )
        return entry

    def build(self, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call its builder with the given arguments."""
        return self.get(name).builder(*args, **kwargs)

    def names(self) -> List[str]:
        """Sorted canonical names of every registered plugin."""
        self._ensure_bootstrapped()
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """Every entry, sorted by name."""
        self._ensure_bootstrapped()
        return [self._entries[k] for k in sorted(self._entries)]

    def __contains__(self, name: object) -> bool:
        self._ensure_bootstrapped()
        key = _normalise(str(name))
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_bootstrapped()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()!r})"


def load_builtin_plugins() -> None:
    """Import the per-domain catalog modules, registering every built-in.

    Idempotent: each catalog module registers on first import only.  Called
    automatically the first time any of the registries is read.
    """
    import repro.network.catalog  # noqa: F401  (topologies)
    import repro.workloads.catalog  # noqa: F401  (workloads)
    import repro.cluster.catalog  # noqa: F401  (placements)
    import repro.baselines.catalog  # noqa: F401  (schemes)
    import repro.exec.executors  # noqa: F401  (executors)
    import repro.exec.chaos  # noqa: F401  (chaos wrapper executor)
    import repro.exec.cluster  # noqa: F401  (HTTP cluster executor)
    import repro.dynamics.catalog  # noqa: F401  (dynamics events)
    import repro.analysis.catalog  # noqa: F401  (analyses)


#: Fabric builders — ``tree``, ``fattree``, ``vl2``, ``leafspine``, ...
TOPOLOGIES = Registry("topology", bootstrap=load_builtin_plugins)

#: Workload generators — ``video``, ``datacenter``, ``pareto-poisson``, ...
WORKLOADS = Registry("workload", bootstrap=load_builtin_plugins)

#: Transport/placement scheme specs — ``scda``, ``rand-tcp``, ``ideal``,
#: ``vlb``, ``hedera`` and the ablation combinations.
SCHEMES = Registry("scheme", bootstrap=load_builtin_plugins)

#: Server-selection policies — ``random``, ``round-robin``, ``least-loaded``,
#: ``scda``.
PLACEMENTS = Registry("placement", bootstrap=load_builtin_plugins)

#: Execution backends for planned job lists — ``serial``, ``thread``,
#: ``process`` (see :mod:`repro.exec.executors`).
EXECUTORS = Registry("executor", bootstrap=load_builtin_plugins)

#: Timed world-mutation events scheduled by a
#: :class:`~repro.dynamics.DynamicsScript` — ``link-failure``,
#: ``link-recovery``, ``capacity-degradation``, ``block-server-churn``,
#: ``workload-surge`` (see :mod:`repro.dynamics.events`).
DYNAMICS = Registry("dynamics event", bootstrap=load_builtin_plugins)

#: Store-driven analyses — ``scheme-comparison``, ``sweep-summary``,
#: ``fct-cdf``, ``availability`` (see :mod:`repro.analysis.store_analyses`).
#: Each builder is a pure function ``analysis(store, **params) -> dict``
#: from a result-store query to a JSON-serialisable artifact.
ANALYSES = Registry("analysis", bootstrap=load_builtin_plugins)

#: The scheme registry doubles as the "transports" axis of the paper's
#: cross-product (each scheme names its transport model); kept under both
#: names so either reads naturally.
TRANSPORTS = SCHEMES

ALL_REGISTRIES: Tuple[Tuple[str, Registry], ...] = (
    ("topologies", TOPOLOGIES),
    ("workloads", WORKLOADS),
    ("schemes", SCHEMES),
    ("placements", PLACEMENTS),
    ("executors", EXECUTORS),
    ("dynamics", DYNAMICS),
    ("analyses", ANALYSES),
)

__all__ = [
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "load_builtin_plugins",
    "TOPOLOGIES",
    "WORKLOADS",
    "SCHEMES",
    "TRANSPORTS",
    "PLACEMENTS",
    "EXECUTORS",
    "DYNAMICS",
    "ANALYSES",
    "ALL_REGISTRIES",
]
