"""Fleet-level energy accounting driven by the simulation clock."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.energy.dormant import DormancyManager
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass
class EnergySample:
    """One periodic sample of fleet power state."""

    time_s: float
    total_power_watts: float
    dormant_servers: int
    total_energy_joules: float


class EnergyAccountant:
    """Samples fleet power draw periodically and integrates energy.

    Attach it to a simulator with :meth:`start`; it then advances every
    server's energy integral each sampling interval and records a time series
    that the energy benchmarks/examples report.
    """

    def __init__(
        self,
        sim: Simulator,
        dormancy: DormancyManager,
        sample_interval_s: float = 1.0,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.sim = sim
        self.dormancy = dormancy
        self.sample_interval_s = float(sample_interval_s)
        self.samples: List[EnergySample] = []
        self._timer: Optional[PeriodicTimer] = None
        self._last_time = sim.now

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._timer is None:
            self._timer = PeriodicTimer(self.sim, self.sample_interval_s, self._sample)

    def stop(self) -> None:
        """Stop sampling (a final sample is taken first)."""
        if self._timer is not None:
            self._sample(self.sim.now)
            self._timer.stop()
            self._timer = None

    def _sample(self, now: float) -> None:
        dt = max(0.0, now - self._last_time)
        if dt > 0:
            self.dormancy.advance(dt)
        self._last_time = now
        self.samples.append(
            EnergySample(
                time_s=now,
                total_power_watts=self.dormancy.total_power_watts(),
                dormant_servers=len(self.dormancy.dormant_servers()),
                total_energy_joules=self.dormancy.total_energy_joules(),
            )
        )

    # -- reporting -------------------------------------------------------------------------
    @property
    def total_energy_joules(self) -> float:
        """Energy consumed by the fleet since accounting started."""
        return self.dormancy.total_energy_joules()

    def average_power_watts(self) -> float:
        """Mean of the sampled fleet power draw."""
        if not self.samples:
            return self.dormancy.total_power_watts()
        return sum(s.total_power_watts for s in self.samples) / len(self.samples)

    def average_dormant_servers(self) -> float:
        """Mean number of dormant servers across samples."""
        if not self.samples:
            return float(len(self.dormancy.dormant_servers()))
        return sum(s.dormant_servers for s in self.samples) / len(self.samples)
