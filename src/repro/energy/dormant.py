"""Dormant-server management (Section VII-C).

A server whose uplink is almost unused — its available uplink rate exceeds the
scale-down threshold ``R_scale`` — is a candidate for the dormant state.
SCDA then (a) replicates passive content onto dormant servers, and (b) keeps
interactive and semi-interactive content *away* from them, "which essentially
keeps the dormant servers dormant resulting in effective scale down".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.energy.power_model import PowerState, ServerPowerModel, ServerPowerProfile


@dataclass
class DormancyConfig:
    """Scale-down policy knobs."""

    #: R_scale: a server whose *available* uplink rate exceeds this is nearly idle.
    scale_down_threshold_bps: float = 50e6
    #: fraction of servers allowed to be dormant simultaneously
    max_dormant_fraction: float = 0.5
    #: a dormant server is woken when its utilisation rises above this
    wake_utilisation: float = 0.05

    def __post_init__(self) -> None:
        if self.scale_down_threshold_bps <= 0:
            raise ValueError("scale_down_threshold_bps must be positive")
        if not (0.0 <= self.max_dormant_fraction <= 1.0):
            raise ValueError("max_dormant_fraction must be in [0, 1]")
        if not (0.0 <= self.wake_utilisation <= 1.0):
            raise ValueError("wake_utilisation must be in [0, 1]")


class DormancyManager:
    """Decides which servers are dormant and tracks their power models."""

    def __init__(
        self,
        server_ids: Sequence[str],
        config: Optional[DormancyConfig] = None,
        profiles: Optional[Mapping[str, ServerPowerProfile]] = None,
    ) -> None:
        if not server_ids:
            raise ValueError("need at least one server")
        self.config = config or DormancyConfig()
        self.models: Dict[str, ServerPowerModel] = {}
        for server_id in server_ids:
            profile = profiles.get(server_id) if profiles else None
            self.models[server_id] = ServerPowerModel(server_id, profile)

    # -- queries ---------------------------------------------------------------------------
    def is_dormant(self, server_id: str) -> bool:
        """True if ``server_id`` is currently in the dormant state."""
        model = self.models.get(server_id)
        return model is not None and model.is_dormant()

    def dormant_servers(self) -> List[str]:
        """Ids of all currently dormant servers."""
        return [sid for sid, model in self.models.items() if model.is_dormant()]

    def power_of(self, server_id: str, now: float = 0.0) -> float:
        """Average power draw of ``server_id`` (used by power-aware selection)."""
        model = self.models.get(server_id)
        return model.average_power_watts if model is not None else 1.0

    def total_power_watts(self) -> float:
        """Aggregate instantaneous draw of the fleet."""
        return sum(model.power_watts for model in self.models.values())

    def total_energy_joules(self) -> float:
        """Aggregate energy consumed so far."""
        return sum(model.energy_joules for model in self.models.values())

    # -- updates ----------------------------------------------------------------------------
    def update(
        self,
        available_uplink_bps: Mapping[str, float],
        utilisation: Mapping[str, float],
        now: float,
    ) -> List[str]:
        """Re-evaluate dormancy given fresh rate/utilisation measurements.

        ``available_uplink_bps`` is the RM-advertised uplink rate of each
        server (high = nearly idle); ``utilisation`` is the fraction of the
        access link actually in use.  Returns the list of servers whose state
        changed in this update.
        """
        changed: List[str] = []
        # Wake servers that became busy.
        for server_id, model in self.models.items():
            util = float(utilisation.get(server_id, 0.0))
            model.set_utilisation(util)
            if model.is_dormant() and util > self.config.wake_utilisation:
                model.set_state(PowerState.ACTIVE, now)
                changed.append(server_id)

        # Candidates for scale-down: nearly idle uplink, sorted idlest first.
        candidates = [
            (available_uplink_bps.get(sid, 0.0), sid)
            for sid, model in self.models.items()
            if not model.is_dormant()
            and available_uplink_bps.get(sid, 0.0) > self.config.scale_down_threshold_bps
            and float(utilisation.get(sid, 0.0)) <= self.config.wake_utilisation
        ]
        candidates.sort(reverse=True)
        max_dormant = int(self.config.max_dormant_fraction * len(self.models))
        budget = max_dormant - len(self.dormant_servers())
        for _rate, server_id in candidates[: max(budget, 0)]:
            self.models[server_id].set_state(PowerState.DORMANT, now)
            changed.append(server_id)

        # Active servers with work become ACTIVE; idle ones IDLE.
        for server_id, model in self.models.items():
            if model.is_dormant():
                continue
            target = PowerState.ACTIVE if model.utilisation > 0.01 else PowerState.IDLE
            model.set_state(target, now)
        return changed

    def advance(self, dt: float) -> float:
        """Integrate energy for every server; returns total joules consumed."""
        return sum(model.advance(dt) for model in self.models.values())
