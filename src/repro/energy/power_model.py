"""Server power model.

Each server has a :class:`ServerPowerProfile` (idle/peak/dormant wattage —
heterogeneous across the fleet) and a :class:`ServerPowerModel` tracks its
current power state and utilisation-dependent draw.  The paper estimates power
from temperature sensors (``P(t) = T(t)/τ``); here the temperature signal is
derived from the power draw so the same relation holds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class PowerState(enum.Enum):
    """Operating state of a server."""

    ACTIVE = "active"     #: serving traffic at full capability
    IDLE = "idle"         #: powered on but (almost) no traffic
    DORMANT = "dormant"   #: low-power / sleep state (scaled down)


@dataclass
class ServerPowerProfile:
    """Static power characteristics of one server.

    The defaults are typical commodity-server numbers; heterogeneity is
    introduced by varying these per server (age, rack position, background
    tasks — Section VII-D).
    """

    idle_watts: float = 150.0
    peak_watts: float = 300.0
    dormant_watts: float = 15.0
    #: latency penalty to wake from the dormant state
    wake_up_latency_s: float = 2.0

    def __post_init__(self) -> None:
        if not (0 < self.dormant_watts <= self.idle_watts <= self.peak_watts):
            raise ValueError(
                "need 0 < dormant_watts <= idle_watts <= peak_watts, got "
                f"{self.dormant_watts}/{self.idle_watts}/{self.peak_watts}"
            )
        if self.wake_up_latency_s < 0:
            raise ValueError("wake_up_latency_s must be non-negative")

    def power_at(self, utilisation: float, state: PowerState) -> float:
        """Power draw (watts) at a given utilisation in a given state.

        Active/idle servers follow the usual linear idle→peak model; dormant
        servers draw their dormant wattage regardless of (zero) utilisation.
        """
        if state is PowerState.DORMANT:
            return self.dormant_watts
        utilisation = min(max(utilisation, 0.0), 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * utilisation


class ServerPowerModel:
    """Dynamic power/temperature tracking for one server."""

    def __init__(self, server_id: str, profile: Optional[ServerPowerProfile] = None) -> None:
        self.server_id = server_id
        self.profile = profile or ServerPowerProfile()
        self.state = PowerState.IDLE
        self.utilisation = 0.0
        #: exponentially weighted running average of the power draw
        self._avg_power_watts = self.profile.power_at(0.0, self.state)
        self._ewma_alpha = 0.3
        self.energy_joules = 0.0
        self.state_changes = 0
        self.last_wake_time_s: Optional[float] = None

    # -- state transitions --------------------------------------------------------------
    def set_state(self, state: PowerState, now: float = 0.0) -> None:
        """Transition the server to ``state``."""
        if state is self.state:
            return
        if self.state is PowerState.DORMANT and state is not PowerState.DORMANT:
            self.last_wake_time_s = now
        self.state = state
        self.state_changes += 1

    def set_utilisation(self, utilisation: float) -> None:
        """Update the utilisation used by the linear power model."""
        if utilisation < 0:
            raise ValueError("utilisation must be non-negative")
        self.utilisation = min(utilisation, 1.0)

    # -- measurements ---------------------------------------------------------------------
    @property
    def power_watts(self) -> float:
        """Instantaneous power draw."""
        return self.profile.power_at(self.utilisation, self.state)

    @property
    def average_power_watts(self) -> float:
        """Running average of the draw (the paper's weighted-average P(t))."""
        return self._avg_power_watts

    def temperature_signal(self, interval_s: float) -> float:
        """The synthetic sensor reading ``T(t) = P(t)·τ`` used by Section VII-D."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        return self.power_watts * interval_s

    def advance(self, dt: float) -> float:
        """Integrate energy over ``dt`` seconds; returns the joules consumed."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        power = self.power_watts
        joules = power * dt
        self.energy_joules += joules
        self._avg_power_watts = (
            self._ewma_alpha * power + (1.0 - self._ewma_alpha) * self._avg_power_watts
        )
        return joules

    def is_dormant(self) -> bool:
        """True while the server sits in the low-power state."""
        return self.state is PowerState.DORMANT
