"""Energy substrate: server power models and dormant-server management.

The paper's energy story (Sections VII-C and VII-D):

* servers holding only *passive* content can be kept in low-power
  ("dormant") states; SCDA steers passive replicas onto those servers and
  keeps active content away from them, so they rarely need to wake up;
* servers are heterogeneous in power draw (rack position, age, background
  load); the power-aware selection divides the rate metric by the measured
  power ``P(t) = T(t)/τ`` and picks the best rate-per-watt server.

The paper measures power via heat/temperature sensors; we substitute a
utilisation-driven power model with a synthetic temperature signal (see
DESIGN.md).
"""

from repro.energy.power_model import PowerState, ServerPowerProfile, ServerPowerModel
from repro.energy.dormant import DormancyManager, DormancyConfig
from repro.energy.accounting import EnergyAccountant

__all__ = [
    "PowerState",
    "ServerPowerProfile",
    "ServerPowerModel",
    "DormancyManager",
    "DormancyConfig",
    "EnergyAccountant",
]
