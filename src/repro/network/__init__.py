"""Datacenter network substrate.

This package provides the flow-level network model that replaces NS-2 in the
original paper:

* :mod:`~repro.network.topology` — nodes, directed links and the topology
  graph.
* :mod:`~repro.network.tree` — the 3-tier tree topology of the paper's
  Figures 1 and 6 (plus external client attachment).
* :mod:`~repro.network.fattree`, :mod:`~repro.network.vl2`,
  :mod:`~repro.network.leafspine` — alternative datacenter fabrics
  (Section IX: "SCDA with general network topologies").
* :mod:`~repro.network.routing` — shortest-path and ECMP routing.
* :mod:`~repro.network.flow` — flow objects with fluid byte progress.
* :mod:`~repro.network.fluid` — max-min (water-filling) bandwidth shares,
  with pure-Python and vectorized numpy backends behind one dispatch.
* :mod:`~repro.network.incidence` — the shared, incrementally-maintained
  link×flow incidence cache used by the allocator and the control round.
* :mod:`~repro.network.fabric` — the event-driven fabric simulator that
  advances flows, integrates queues and invokes a transport model.
* :mod:`~repro.network.transport` — transport models: flow-level TCP
  (RandTCP baseline) and the SCDA explicit-rate transport.
"""

from repro.network.topology import Node, NodeKind, Link, Topology
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.network.fattree import FatTreeConfig, build_fat_tree, build_fat_tree_topology
from repro.network.vl2 import Vl2Config, build_vl2_clos, build_vl2_topology
from repro.network.leafspine import (
    LeafSpineConfig,
    build_leaf_spine,
    build_leaf_spine_topology,
)
from repro.network.routing import Router, EcmpRouter, HashingEcmpRouter
from repro.network.flow import Flow, FlowState
from repro.network.fluid import max_min_shares
from repro.network.incidence import IncidenceCache
from repro.network.fabric import FabricSimulator, FabricConfig

__all__ = [
    "Node",
    "NodeKind",
    "Link",
    "Topology",
    "TreeTopologyConfig",
    "build_tree_topology",
    "FatTreeConfig",
    "build_fat_tree",
    "build_fat_tree_topology",
    "Vl2Config",
    "build_vl2_topology",
    "build_vl2_clos",
    "LeafSpineConfig",
    "build_leaf_spine",
    "build_leaf_spine_topology",
    "Router",
    "EcmpRouter",
    "HashingEcmpRouter",
    "Flow",
    "FlowState",
    "max_min_shares",
    "IncidenceCache",
    "FabricSimulator",
    "FabricConfig",
]
