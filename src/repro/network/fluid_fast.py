"""Vectorized max-min water-filling on a numpy link×flow incidence.

This module hosts the two numpy backends of
:func:`repro.network.fluid.max_min_shares`:

* ``solver="numpy"`` — :func:`max_min_shares_numpy`: a *full* progressive
  filling over the whole flow set, the PR 1 design.  It runs the same rounds
  as the pure-Python solver — identical round structure, identical freeze
  order and tie-breaking — but each round is a handful of numpy reductions
  over flow-major COO index arrays, so a round costs O(nnz) C-speed work
  rather than O(L·F) interpreter work.
* ``solver="incremental"`` — :class:`DeltaWaterFiller`: on flow arrival or
  departure, re-solve only the *connected component* of the link×flow
  incidence graph that the change touches.  Max-min allocations decompose
  exactly per connected component (a component's links carry only component
  flows, so progressive filling never moves capacity across components),
  which makes the component-local solve equal to the full solve on the
  component rows — not an approximation.  Dirty seeds come from the
  :class:`~repro.network.incidence.IncidenceCache` change listeners plus
  per-call verification of the runtime-mutable inputs (priority weights,
  demand caps, link capacities).  When the dirty component exceeds
  :data:`MAX_DIRTY_FRACTION` of the live flows the filler falls back to one
  full solve — incrementality only pays on sparse churn.

Both backends share one array kernel (:func:`_waterfill_kernel`).  The full
backend rebuilds its arrays per flow-set epoch; the incremental backend runs
on the cache's *persistent* :class:`~repro.network.incidence.IncidenceTable`,
so a churn event costs O(path length) table maintenance + O(component) solve
instead of O(nnz) rebuild + O(nnz · rounds) solve.

Equivalence with the Python solver (within 1e-9 relative) is enforced by
``tests/network/test_fluid_equivalence.py`` and
``tests/network/test_fluid_incremental.py``; the only differences are
floating-point summation order inside a round (numpy ``bincount`` vs Python
``sum``) and simultaneous-vs-sequential freezing of *exactly tied*
bottleneck links, both of which perturb results at machine epsilon only.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.network.flow import Flow
from repro.network.incidence import IncidenceArrays, IncidenceCache, IncidenceTable

#: The incremental path abandons its BFS and falls back to a full solve when
#: the dirty component exceeds this fraction of the live flows — beyond it the
#: component solve approaches full-solve cost while paying extraction
#: overhead on top (measured in benchmarks/test_bench_kernel_microbench.py).
MAX_DIRTY_FRACTION = 0.25

#: Pending-churn bookkeeping is dropped (the filler goes cold and the next
#: solve is a full one) past this many un-consumed events — it bounds listener
#: memory when a scenario churns for a long time between incremental solves.
_MAX_PENDING_EVENTS = 200_000

_INF = float("inf")


def _waterfill_kernel(
    pair_flow: "np.ndarray",
    pair_link: "np.ndarray",
    w: "np.ndarray",
    cap: "np.ndarray",
    link_cap: "np.ndarray",
) -> Tuple["np.ndarray", int]:
    """Progressive filling over COO arrays; returns (rates, rounds).

    ``w``/``cap`` are per-row weight and demand cap (rows with ``cap <= 0``
    freeze at 0 immediately — tombstoned rows enter that way), ``link_cap``
    per-slot capacity (``inf`` slots can never bottleneck).  The round
    structure mirrors the pure-Python solver exactly: find the global
    bottleneck share, freeze cap-limited flows first, then freeze the flows
    on all bottleneck links, a flow on several freezing links taking the
    share of the first link in slot order.
    """
    num_flows = w.shape[0]
    num_links = link_cap.shape[0]
    rate = np.zeros(num_flows, dtype=np.float64)
    frozen = cap <= 0.0

    pair_w = w[pair_flow]
    rounds = 0
    max_rounds = num_flows + num_links + 1
    for _round in range(max_rounds):
        live = ~frozen
        if not live.any():
            break
        rounds += 1
        live_pair = live[pair_flow]
        weight_sum = np.bincount(
            pair_link, weights=np.where(live_pair, pair_w, 0.0), minlength=num_links
        )
        used = np.bincount(pair_link, weights=rate[pair_flow], minlength=num_links)
        remaining = np.maximum(link_cap - used, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(weight_sum > 0.0, remaining / weight_sum, np.inf)
        bottleneck = float(share.min()) if num_links else float("inf")
        if bottleneck == float("inf"):
            # No capacity constraint applies; every remaining flow takes its cap.
            rate[live] = cap[live]
            break

        # Any flow whose cap is below its would-be share freezes at the cap.
        capped = live & (cap < bottleneck * w - 1e-12)
        if capped.any():
            rate[capped] = cap[capped]
            frozen |= capped
            continue

        # Freeze the live flows on (all) bottleneck links at their share.  A
        # flow on several freezing links takes the share of the first one in
        # link order — the same link the Python solver's dict iteration
        # freezes it on.
        freeze_link = (weight_sum > 0.0) & (share <= bottleneck + 1e-9)
        sel = freeze_link[pair_link] & live_pair
        if sel.any():
            first_link = np.full(num_flows, num_links, dtype=np.intp)
            np.minimum.at(first_link, pair_flow[sel], pair_link[sel])
            to_freeze = first_link < num_links
            rate[to_freeze] = share[first_link[to_freeze]] * w[to_freeze]
            frozen |= to_freeze
        else:  # pragma: no cover - defensive, mirrors the Python solver
            rate[live] = np.minimum(cap[live], bottleneck * w[live])
            break
    return rate, rounds


def _structure_for(
    flows: Sequence[Flow], cache: Optional[IncidenceCache]
) -> IncidenceArrays:
    """The incidence arrays for ``flows`` — from the cache when it is current."""
    if cache is not None and cache.matches(flows):
        return cache.arrays()
    return IncidenceCache(flows).arrays()


def max_min_shares_numpy(
    flows: Sequence[Flow],
    demand_caps: Optional[Mapping[int, float]] = None,
    weights: Optional[Mapping[int, float]] = None,
    capacity_scale: float = 1.0,
    capacity_overrides: Optional[Mapping[str, float]] = None,
    cache: Optional[IncidenceCache] = None,
) -> Dict[int, float]:
    """Vectorized (weighted) max-min fair rates — see ``fluid.max_min_shares``."""
    rates: Dict[int, float] = {f.flow_id: 0.0 for f in flows}
    structure = _structure_for(flows, cache)
    flow_list = structure.flow_list
    num_flows = structure.num_flows
    num_links = structure.num_links
    if num_flows == 0:
        return rates

    # Per-flow weight ℘_j × multiplicity and cap min(demand_cap, aggregate
    # app_limit), clamped at 0.  Explicit weights are per-session, like
    # priority_weight, so they scale by multiplicity too.
    w = np.fromiter((f.effective_weight for f in flow_list), np.float64, num_flows)
    if weights:
        for i, f in enumerate(flow_list):
            if f.flow_id in weights:
                w[i] = float(weights[f.flow_id]) * f.multiplicity
    bad = np.nonzero(w <= 0.0)[0]
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"flow {flow_list[i].flow_id} has non-positive weight {w[i]}"
        )
    cap = np.fromiter(
        (f.aggregate_app_limit_bps for f in flow_list), np.float64, num_flows
    )
    if demand_caps:
        for i, f in enumerate(flow_list):
            c = demand_caps.get(f.flow_id)
            if c is not None and c < cap[i]:
                cap[i] = float(c)
    np.maximum(cap, 0.0, out=cap)

    # Per-link capacity: override, then scale, then clamp — as the Python solver.
    link_cap = np.fromiter(
        (link.capacity_bps for link in structure.link_list), np.float64, num_links
    )
    if capacity_overrides:
        for li, link in enumerate(structure.link_list):
            if link.link_id in capacity_overrides:
                link_cap[li] = float(capacity_overrides[link.link_id])
    link_cap *= capacity_scale
    np.maximum(link_cap, 0.0, out=link_cap)

    rate, _rounds = _waterfill_kernel(
        structure.pair_flow, structure.pair_link, w, cap, link_cap
    )
    for i, flow in enumerate(flow_list):
        rates[flow.flow_id] = float(rate[i])
    return rates


class DeltaWaterFiller:
    """Incremental max-min solver bound to one :class:`IncidenceCache`.

    The filler subscribes to the cache's membership listeners, keeps
    row/slot-aligned snapshots of every solver input (weights, effective
    demand caps, effective link capacities) plus the last full rate vector,
    and on each solve:

    1. verifies the runtime-mutable inputs against the snapshots (priority
       weights are mutated in place by the SCDA priority manager every control
       round; SLA boosts mutate link capacities without an epoch bump) —
       changed entries become dirty seeds, exactly like churned flows;
    2. grows the dirty set to the full connected component of the incidence
       graph (the unit on which max-min decomposes exactly), aborting early
       to a full solve past :data:`MAX_DIRTY_FRACTION`;
    3. solves only the component with the shared kernel, on sub-arrays
       extracted in global row/slot order so tie-breaking matches the full
       solve bit for bit, and merges the component rates into the kept vector.

    ``app_limit_bps`` is treated as immutable after a flow starts (nothing in
    the runtime mutates it; it is an admission-time property), which is what
    lets the per-solve verification stop at weights + caps + capacities.
    """

    def __init__(self, cache: IncidenceCache) -> None:
        self.cache = cache
        cache.add_listener(self._on_change)
        cache.delta = self

        self._cold = True
        self._rates: Dict[int, float] = {}
        self._rate_row: Optional[np.ndarray] = None
        self._w_row: Optional[np.ndarray] = None
        self._cap_row: Optional[np.ndarray] = None
        self._linkcap_slot: Optional[np.ndarray] = None
        self._caps_snapshot: Dict[int, float] = {}
        self._weights_snapshot: Dict[int, float] = {}
        self._layout_version = -1
        self._epoch_seen = -1
        # Pending churn since the last solve.
        self._pending_added: Set[int] = set()
        self._pending_links: Set[str] = set()
        self._pending_removed: Set[int] = set()
        # Perf counters (exported as kernel extras via MetricsCollector).
        self.solves_full = 0
        self.solves_incremental = 0
        self.solves_noop = 0
        self.fallback_large_region = 0
        self.fallback_stale = 0
        self.kernel_rounds = 0
        self.dirty_rows_total = 0
        self.dirty_rows_max = 0

    @classmethod
    def attach(cls, cache: IncidenceCache) -> "DeltaWaterFiller":
        """The cache's filler, creating one on first use."""
        if cache.delta is None:
            cls(cache)
        return cache.delta

    # -- change feed ---------------------------------------------------------------
    def _on_change(self, event: str, flow: Optional[Flow], path) -> None:
        if event == "clear":
            self._go_cold()
            return
        if self._cold:
            return
        if (
            len(self._pending_added) + len(self._pending_links) + len(self._pending_removed)
            > _MAX_PENDING_EVENTS
        ):
            self._go_cold()
            return
        if event == "add":
            self._pending_added.add(flow.flow_id)
            self._pending_removed.discard(flow.flow_id)
            for link in path:
                self._pending_links.add(link.link_id)
        elif event == "remove":
            self._pending_added.discard(flow.flow_id)
            self._pending_removed.add(flow.flow_id)
            for link in path:
                self._pending_links.add(link.link_id)

    def _go_cold(self) -> None:
        self._cold = True
        self._pending_added.clear()
        self._pending_links.clear()
        self._pending_removed.clear()
        self._rates = {}
        self._rate_row = None

    # -- stats ---------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        out = {
            "solves_full": float(self.solves_full),
            "solves_incremental": float(self.solves_incremental),
            "solves_noop": float(self.solves_noop),
            "fallback_large_region": float(self.fallback_large_region),
            "fallback_stale": float(self.fallback_stale),
            "solver_rounds": float(self.kernel_rounds),
            "dirty_rows_total": float(self.dirty_rows_total),
            "dirty_rows_max": float(self.dirty_rows_max),
        }
        if self.cache._table is not None:
            out.update(self.cache.table().stats())
        return out

    # -- solving -------------------------------------------------------------------
    def solve(
        self,
        flows: Sequence[Flow],
        demand_caps: Optional[Mapping[int, float]] = None,
        weights: Optional[Mapping[int, float]] = None,
        capacity_scale: float = 1.0,
        capacity_overrides: Optional[Mapping[str, float]] = None,
    ) -> Dict[int, float]:
        """Max-min rates for ``flows``, incrementally when the state allows."""
        cache = self.cache
        # Membership check: the fabric's lock-step list is trusted outright;
        # anything else pays an O(F) id sweep.  A flow list the cache does not
        # cover at all is solved fresh (legacy path) without touching state.
        if flows is not cache.trusted_flows and not cache.covers_ids(flows):
            self.fallback_stale += 1
            return max_min_shares_numpy(
                flows,
                demand_caps=demand_caps,
                weights=weights,
                capacity_scale=capacity_scale,
                capacity_overrides=capacity_overrides,
                cache=None,
            )

        table = cache.table()
        if (
            self._cold
            or self._rate_row is None
            or self._layout_version != table.layout_version
            or capacity_scale != getattr(self, "_scale_snapshot", None)
        ):
            return self._solve_full(
                table, demand_caps, weights, capacity_scale, capacity_overrides
            )

        caps = demand_caps or {}
        wdict = weights or {}
        n_rows = table.num_rows
        row_flows = table.row_flows
        dirty_rows: Set[int] = set()
        dirty_slots: Set[int] = set()

        # Grow snapshots for rows appended since the last solve; the new rows
        # are dirty by construction (they are the pending adds).
        if self._w_row.shape[0] < n_rows:
            grown = np.empty(n_rows, dtype=np.float64)
            grown[: self._w_row.shape[0]] = self._w_row
            grown[self._w_row.shape[0] :] = 1.0
            self._w_row = grown
            for name in ("_cap_row", "_rate_row"):
                old = getattr(self, name)
                grown = np.zeros(n_rows, dtype=np.float64)
                grown[: old.shape[0]] = old
                setattr(self, name, grown)

        # 1. Churn seeds.
        row_of = table.row_of
        for fid in self._pending_added:
            row = row_of.get(fid)
            if row is not None:
                dirty_rows.add(row)
                flow = row_flows[row]
                self._cap_row[row] = self._effective_cap(flow, caps)
                self._w_row[row] = self._effective_weight(flow, wdict)
        for fid in self._pending_removed:
            self._rates.pop(fid, None)
        slot_of = table.slot_of
        for link_id in self._pending_links:
            slot = slot_of.get(link_id)
            if slot is not None:
                dirty_slots.add(slot)

        # 2. Verify the runtime-mutable inputs; differences become seeds.
        cur_w = np.fromiter(
            (1.0 if f is None else f.effective_weight for f in row_flows),
            np.float64,
            n_rows,
        )
        if wdict:
            for fid, value in wdict.items():
                row = row_of.get(fid)
                if row is not None:
                    cur_w[row] = float(value) * row_flows[row].multiplicity
        if (cur_w <= 0.0).any():
            bad = int(np.nonzero(cur_w <= 0.0)[0][0])
            flow = row_flows[bad]
            if flow is not None:
                raise ValueError(
                    f"flow {flow.flow_id} has non-positive weight {cur_w[bad]}"
                )
        changed = np.nonzero(cur_w != self._w_row)[0]
        if changed.size:
            dirty_rows.update(int(r) for r in changed)
        self._w_row = cur_w

        if caps != self._caps_snapshot or wdict != self._weights_snapshot:
            # Demand caps changed (a new SCDA control round published new
            # allocations): diff per flow, dirty the changed rows.
            old = self._caps_snapshot
            new = dict(caps)
            for fid in old.keys() | new.keys():
                if old.get(fid) != new.get(fid):
                    row = row_of.get(fid)
                    if row is not None:
                        dirty_rows.add(row)
                        self._cap_row[row] = self._effective_cap(row_flows[row], caps)
            self._caps_snapshot = new
            self._weights_snapshot = dict(wdict)

        cur_linkcap = table.link_capacities(capacity_scale, capacity_overrides)
        if cur_linkcap.shape[0] != self._linkcap_slot.shape[0]:
            grown = np.full(cur_linkcap.shape[0], _INF, dtype=np.float64)
            grown[: self._linkcap_slot.shape[0]] = self._linkcap_slot
            self._linkcap_slot = grown
        changed_slots = np.nonzero(cur_linkcap != self._linkcap_slot)[0]
        for s in changed_slots:
            if table.link_slots[int(s)] is not None:
                dirty_slots.add(int(s))
        self._linkcap_slot = cur_linkcap

        if not dirty_rows and not dirty_slots:
            self.solves_noop += 1
            self._finish_bookkeeping(table)
            return dict(self._rates)

        # 3. Close over the connected component; bail out when it gets large.
        component = self._component_of(table, dirty_rows, dirty_slots)
        if component is None:
            self.fallback_large_region += 1
            return self._solve_full(
                table, demand_caps, weights, capacity_scale, capacity_overrides
            )
        comp_rows, comp_slots = component
        self._solve_component(table, comp_rows, comp_slots)
        self.solves_incremental += 1
        self.dirty_rows_total += len(comp_rows)
        if len(comp_rows) > self.dirty_rows_max:
            self.dirty_rows_max = len(comp_rows)
        self._finish_bookkeeping(table)
        return dict(self._rates)

    # -- helpers -------------------------------------------------------------------
    @staticmethod
    def _effective_cap(flow: Flow, caps: Mapping[int, float]) -> float:
        cap = caps.get(flow.flow_id, _INF)
        app_limit = flow.aggregate_app_limit_bps
        if app_limit < cap:
            cap = app_limit
        if not flow.path:
            cap = 0.0  # pathless flows get nothing, as in the reference solver
        return max(0.0, float(cap))

    @staticmethod
    def _effective_weight(flow: Flow, wdict: Mapping[int, float]) -> float:
        value = wdict.get(flow.flow_id)
        if value is None:
            return flow.effective_weight
        return float(value) * flow.multiplicity

    def _finish_bookkeeping(self, table: IncidenceTable) -> None:
        self._pending_added.clear()
        self._pending_links.clear()
        self._pending_removed.clear()
        self._layout_version = table.layout_version
        self._epoch_seen = self.cache.epoch

    def _component_of(
        self,
        table: IncidenceTable,
        seed_rows: Set[int],
        seed_slots: Set[int],
    ) -> Optional[Tuple[List[int], List[int]]]:
        """BFS closure of the seeds over the bipartite incidence graph.

        Returns ``(rows, slots)`` sorted ascending, or None when the region
        exceeds the fallback threshold (the BFS aborts as soon as it does, so
        a dense region costs O(threshold), not O(component)).
        """
        limit = max(64, int(MAX_DIRTY_FRACTION * table.live_rows))
        rows: Set[int] = set()
        slots: Set[int] = set(seed_slots)
        row_frontier: List[int] = [r for r in seed_rows if table.row_flows[r] is not None]
        slot_frontier: List[int] = list(seed_slots)
        rows.update(row_frontier)
        cache = self.cache
        row_of = table.row_of
        pl = table.pair_link
        while row_frontier or slot_frontier:
            if len(rows) > limit:
                return None
            next_slots: List[int] = []
            for row in row_frontier:
                start, stop = table.row_start[row], table.row_stop[row]
                for i in range(start, stop):
                    slot = int(pl[i])
                    if slot != table.SCRATCH and slot not in slots:
                        slots.add(slot)
                        next_slots.append(slot)
            slot_frontier.extend(next_slots)
            row_frontier = []
            while slot_frontier:
                slot = slot_frontier.pop()
                link = table.link_slots[slot]
                if link is None:
                    continue
                for flow in cache.flows_of_link(link.link_id):
                    row = row_of.get(flow.flow_id)
                    if row is not None and row not in rows:
                        rows.add(row)
                        row_frontier.append(row)
                        if len(rows) > limit:
                            return None
        return sorted(rows), sorted(slots)

    def _solve_component(
        self, table: IncidenceTable, rows: List[int], slots: List[int]
    ) -> None:
        """Solve one component on sub-arrays in global row/slot order.

        Extracting rows and slots in ascending global order preserves the
        full solve's accumulation and tie-break order restricted to the
        component, so the merged rate vector is bit-identical to what a full
        solve over the whole table would produce for these rows.
        """
        if not rows:
            return
        n_slots_local = len(slots)
        slot_local = np.full(table.num_slots, n_slots_local, dtype=np.intp)
        slot_local[np.asarray(slots, dtype=np.intp)] = np.arange(
            n_slots_local, dtype=np.intp
        )
        spans = [
            table.pair_link[table.row_start[r] : table.row_stop[r]] for r in rows
        ]
        lengths = np.fromiter((s.shape[0] for s in spans), np.intp, len(spans))
        pair_flow_loc = np.repeat(np.arange(len(rows), dtype=np.intp), lengths)
        pair_link_loc = (
            slot_local[np.concatenate(spans)]
            if spans
            else np.zeros(0, dtype=np.intp)
        )
        row_idx = np.asarray(rows, dtype=np.intp)
        w_loc = self._w_row[row_idx]
        cap_loc = self._cap_row[row_idx]
        linkcap_loc = self._linkcap_slot[np.asarray(slots, dtype=np.intp)]
        rate_loc, rounds = _waterfill_kernel(
            pair_flow_loc, pair_link_loc, w_loc, cap_loc, linkcap_loc
        )
        self.kernel_rounds += rounds
        self._rate_row[row_idx] = rate_loc
        rates = self._rates
        row_flows = table.row_flows
        for i, r in enumerate(rows):
            rates[row_flows[r].flow_id] = float(rate_loc[i])

    def _solve_full(
        self,
        table: IncidenceTable,
        demand_caps: Optional[Mapping[int, float]],
        weights: Optional[Mapping[int, float]],
        capacity_scale: float,
        capacity_overrides: Optional[Mapping[str, float]],
    ) -> Dict[int, float]:
        """One full solve over the persistent table; refreshes every snapshot."""
        caps = demand_caps or {}
        wdict = weights or {}
        n_rows = table.num_rows
        row_flows = table.row_flows
        row_start, row_stop = table.row_start, table.row_stop

        w = np.fromiter(
            (1.0 if f is None else f.effective_weight for f in row_flows),
            np.float64,
            n_rows,
        )
        if wdict:
            row_of = table.row_of
            for fid, value in wdict.items():
                row = row_of.get(fid)
                if row is not None:
                    w[row] = float(value) * row_flows[row].multiplicity
        live_bad = [
            r for r in np.nonzero(w <= 0.0)[0] if row_flows[int(r)] is not None
        ]
        if live_bad:
            r = int(live_bad[0])
            raise ValueError(
                f"flow {row_flows[r].flow_id} has non-positive weight {w[r]}"
            )
        cap = np.fromiter(
            (
                0.0
                if f is None or row_stop[r] == row_start[r]
                else self._effective_cap(f, caps)
                for r, f in enumerate(row_flows)
            ),
            np.float64,
            n_rows,
        )
        link_cap = table.link_capacities(capacity_scale, capacity_overrides)
        rate, rounds = _waterfill_kernel(
            table.pair_flow[: table.pair_count],
            table.pair_link[: table.pair_count],
            w,
            cap,
            link_cap,
        )
        self.kernel_rounds += rounds
        self.solves_full += 1

        rates: Dict[int, float] = {}
        for r, flow in enumerate(row_flows):
            if flow is not None:
                rates[flow.flow_id] = float(rate[r])
        self._rates = rates
        self._rate_row = rate
        self._w_row = w
        self._cap_row = cap
        self._linkcap_slot = link_cap
        self._caps_snapshot = dict(caps)
        self._weights_snapshot = dict(wdict)
        self._scale_snapshot = capacity_scale
        self._cold = False
        self._finish_bookkeeping(table)
        return dict(rates)


def max_min_shares_incremental(
    flows: Sequence[Flow],
    demand_caps: Optional[Mapping[int, float]] = None,
    weights: Optional[Mapping[int, float]] = None,
    capacity_scale: float = 1.0,
    capacity_overrides: Optional[Mapping[str, float]] = None,
    cache: Optional[IncidenceCache] = None,
) -> Dict[int, float]:
    """The ``solver="incremental"`` entry point — see ``fluid.max_min_shares``.

    Requires a cache covering ``flows``; a :class:`DeltaWaterFiller` is
    attached to it on first use.  Without a cache there is nothing to be
    incremental against, so the call degrades to one full numpy solve.
    """
    if cache is None:
        return max_min_shares_numpy(
            flows,
            demand_caps=demand_caps,
            weights=weights,
            capacity_scale=capacity_scale,
            capacity_overrides=capacity_overrides,
        )
    filler = DeltaWaterFiller.attach(cache)
    return filler.solve(
        flows,
        demand_caps=demand_caps,
        weights=weights,
        capacity_scale=capacity_scale,
        capacity_overrides=capacity_overrides,
    )
