"""Vectorized max-min water-filling on a numpy link×flow incidence.

This is the ``solver="numpy"`` backend of
:func:`repro.network.fluid.max_min_shares`.  It runs the *same* progressive
filling as the pure-Python solver — identical round structure, identical
freeze order and tie-breaking — but each round is a handful of numpy
reductions over flow-major COO index arrays instead of Python loops over
``link × flow`` lists, so a round costs O(nnz) C-speed work rather than
O(L·F) interpreter work.

The incidence structure (which flow crosses which link) is either rebuilt
from the flow list or taken from an :class:`~repro.network.incidence.IncidenceCache`
whose arrays are cached per flow-set epoch, so back-to-back control rounds
over an unchanged flow set skip the structure build entirely.

Equivalence with the Python solver (within 1e-9 relative) is enforced by
``tests/network/test_fluid_equivalence.py``; the only differences are
floating-point summation order inside a round (numpy ``bincount`` vs Python
``sum``) and simultaneous-vs-sequential freezing of *exactly tied*
bottleneck links, both of which perturb results at machine epsilon only.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.network.flow import Flow
from repro.network.incidence import IncidenceArrays, IncidenceCache


def _structure_for(
    flows: Sequence[Flow], cache: Optional[IncidenceCache]
) -> IncidenceArrays:
    """The incidence arrays for ``flows`` — from the cache when it is current."""
    if cache is not None and cache.matches(flows):
        return cache.arrays()
    return IncidenceCache(flows).arrays()


def max_min_shares_numpy(
    flows: Sequence[Flow],
    demand_caps: Optional[Mapping[int, float]] = None,
    weights: Optional[Mapping[int, float]] = None,
    capacity_scale: float = 1.0,
    capacity_overrides: Optional[Mapping[str, float]] = None,
    cache: Optional[IncidenceCache] = None,
) -> Dict[int, float]:
    """Vectorized (weighted) max-min fair rates — see ``fluid.max_min_shares``."""
    rates: Dict[int, float] = {f.flow_id: 0.0 for f in flows}
    structure = _structure_for(flows, cache)
    flow_list = structure.flow_list
    num_flows = structure.num_flows
    num_links = structure.num_links
    if num_flows == 0:
        return rates

    pair_flow = structure.pair_flow
    pair_link = structure.pair_link

    # Per-flow weight ℘_j and cap min(demand_cap, app_limit), clamped at 0.
    w = np.fromiter((f.priority_weight for f in flow_list), np.float64, num_flows)
    if weights:
        for i, f in enumerate(flow_list):
            if f.flow_id in weights:
                w[i] = float(weights[f.flow_id])
    bad = np.nonzero(w <= 0.0)[0]
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"flow {flow_list[i].flow_id} has non-positive weight {w[i]}"
        )
    cap = np.fromiter((f.app_limit_bps for f in flow_list), np.float64, num_flows)
    if demand_caps:
        for i, f in enumerate(flow_list):
            c = demand_caps.get(f.flow_id)
            if c is not None and c < cap[i]:
                cap[i] = float(c)
    np.maximum(cap, 0.0, out=cap)

    # Per-link capacity: override, then scale, then clamp — as the Python solver.
    link_cap = np.fromiter(
        (link.capacity_bps for link in structure.link_list), np.float64, num_links
    )
    if capacity_overrides:
        for li, link in enumerate(structure.link_list):
            if link.link_id in capacity_overrides:
                link_cap[li] = float(capacity_overrides[link.link_id])
    link_cap *= capacity_scale
    np.maximum(link_cap, 0.0, out=link_cap)

    rate = np.zeros(num_flows, dtype=np.float64)
    # Zero-cap flows freeze at 0 immediately (they simply get nothing).
    frozen = cap <= 0.0

    pair_w = w[pair_flow]
    max_rounds = num_flows + num_links + 1
    for _round in range(max_rounds):
        live = ~frozen
        if not live.any():
            break
        live_pair = live[pair_flow]
        weight_sum = np.bincount(
            pair_link, weights=np.where(live_pair, pair_w, 0.0), minlength=num_links
        )
        used = np.bincount(pair_link, weights=rate[pair_flow], minlength=num_links)
        remaining = np.maximum(link_cap - used, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(weight_sum > 0.0, remaining / weight_sum, np.inf)
        bottleneck = float(share.min()) if num_links else float("inf")
        if bottleneck == float("inf"):
            # No capacity constraint applies; every remaining flow takes its cap.
            rate[live] = cap[live]
            break

        # Any flow whose cap is below its would-be share freezes at the cap.
        capped = live & (cap < bottleneck * w - 1e-12)
        if capped.any():
            rate[capped] = cap[capped]
            frozen |= capped
            continue

        # Freeze the live flows on (all) bottleneck links at their share.  A
        # flow on several freezing links takes the share of the first one in
        # link order — the same link the Python solver's dict iteration
        # freezes it on.
        freeze_link = (weight_sum > 0.0) & (share <= bottleneck + 1e-9)
        sel = freeze_link[pair_link] & live_pair
        if sel.any():
            first_link = np.full(num_flows, num_links, dtype=np.intp)
            np.minimum.at(first_link, pair_flow[sel], pair_link[sel])
            to_freeze = first_link < num_links
            rate[to_freeze] = share[first_link[to_freeze]] * w[to_freeze]
            frozen |= to_freeze
        else:  # pragma: no cover - defensive, mirrors the Python solver
            rate[live] = np.minimum(cap[live], bottleneck * w[live])
            break

    for i, flow in enumerate(flow_list):
        rates[flow.flow_id] = float(rate[i])
    return rates
