"""The 3-tier tree datacenter topology of the paper (Figures 1 and 6).

The experimental topology of Section X is a three-tier tree:

* level 3: one core switch (entry point of the cloud),
* level 2: aggregation switches,
* level 1: top-of-rack (edge) switches,
* level 0: block servers (hosts), plus external clients hanging off the core
  through higher-latency access links.

Figure 6 annotates the links with a base bandwidth ``X`` (server access
links), ``6X`` for some upper links, and ``K·X`` (``K < 6``) for others —
"by varying this bandwidth multiplier of some links ... we show that SCDA is
not restricted to equal bandwidth datacenter architectures".  Internal link
delays are 10 ms and the client access delay is 50 ms, as in the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.network.topology import Node, Topology

GBPS = 1e9
MBPS = 1e6


@dataclass
class TreeTopologyConfig:
    """Parameters of the 3-tier tree.

    The defaults mirror the paper's Figure 6 at a laptop-friendly scale:
    ``num_agg`` aggregation switches under one core, ``racks_per_agg`` racks
    per aggregation switch, ``hosts_per_rack`` block servers per rack, and
    ``num_clients`` external clients attached to the core switch.
    """

    base_bandwidth_bps: float = 500.0 * MBPS  #: X in the paper (X = 500 Mb/s or 200 Mb/s)
    bandwidth_factor: float = 3.0             #: K in the paper (K < 6)
    core_multiplier: float = 6.0              #: the 6X links of Figure 6
    num_agg: int = 2                          #: aggregation switches
    racks_per_agg: int = 2                    #: ToR switches per aggregation switch
    hosts_per_rack: int = 5                   #: block servers per rack
    num_clients: int = 8                      #: external UCL clients
    internal_delay_s: float = 0.010           #: 10 ms internal links
    client_delay_s: float = 0.050             #: 50 ms client access links
    client_bandwidth_bps: float = 0.0         #: 0 -> use base bandwidth
    buffer_ms: float = 100.0                  #: per-link buffer, in ms at link rate
    heterogeneous_right_side: bool = True     #: apply K only to the "right half" (Fig. 6)

    def __post_init__(self) -> None:
        if self.base_bandwidth_bps <= 0:
            raise ValueError("base_bandwidth_bps must be positive")
        if self.bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        if min(self.num_agg, self.racks_per_agg, self.hosts_per_rack) < 1:
            raise ValueError("tree dimensions must be >= 1")
        if self.num_clients < 1:
            raise ValueError("need at least one client")

    @property
    def num_hosts(self) -> int:
        """Total number of block-server hosts."""
        return self.num_agg * self.racks_per_agg * self.hosts_per_rack

    def buffer_bytes(self, capacity_bps: float) -> float:
        """Buffer size for a link of the given capacity."""
        return capacity_bps * (self.buffer_ms / 1000.0) / 8.0


def build_tree_topology(config: TreeTopologyConfig | None = None) -> Topology:
    """Build the 3-tier tree of Figure 6.

    Node naming: ``core``, ``agg-<i>``, ``tor-<i>-<j>``, ``bs-<i>-<j>-<k>``,
    ``ucl-<c>``.  Host attributes record rack and pod ids so placement
    policies can reason about locality.
    """
    cfg = config or TreeTopologyConfig()
    topo = Topology(name="scda-3tier-tree")

    x = cfg.base_bandwidth_bps
    core_bw = cfg.core_multiplier * x
    k_bw = cfg.bandwidth_factor * x

    core = topo.add_switch("core", level=3)

    for a in range(cfg.num_agg):
        agg = topo.add_switch(f"agg-{a}", level=2, pod=a)
        # Figure 6 shows heterogeneous upper-level links: the left side of the
        # tree uses 6X core links while the right side uses K·X links.
        right_side = cfg.heterogeneous_right_side and (a >= cfg.num_agg / 2.0)
        agg_bw = k_bw if right_side else core_bw
        topo.add_duplex_link(agg, core, agg_bw, cfg.internal_delay_s, cfg.buffer_bytes(agg_bw))

        for r in range(cfg.racks_per_agg):
            tor = topo.add_switch(f"tor-{a}-{r}", level=1, pod=a, rack=f"{a}-{r}")
            tor_bw = k_bw if right_side else core_bw
            topo.add_duplex_link(tor, agg, tor_bw, cfg.internal_delay_s, cfg.buffer_bytes(tor_bw))

            for h in range(cfg.hosts_per_rack):
                host = topo.add_host(
                    f"bs-{a}-{r}-{h}",
                    level=0,
                    pod=a,
                    rack=f"{a}-{r}",
                    right_side=right_side,
                )
                topo.add_duplex_link(host, tor, x, cfg.internal_delay_s, cfg.buffer_bytes(x))

    client_bw = cfg.client_bandwidth_bps or x
    for c in range(cfg.num_clients):
        client = topo.add_client(f"ucl-{c}")
        topo.add_duplex_link(
            client, core, client_bw, cfg.client_delay_s, cfg.buffer_bytes(client_bw)
        )

    topo.validate()
    return topo


def rack_of(node: Node) -> str:
    """Rack identifier of a host (empty string for non-rack nodes)."""
    return str(node.attrs.get("rack", ""))


def hosts_by_rack(topo: Topology) -> Dict[str, List[Node]]:
    """Group the topology's hosts by rack id."""
    grouped: Dict[str, List[Node]] = {}
    for host in topo.hosts():
        grouped.setdefault(rack_of(host), []).append(host)
    return grouped
