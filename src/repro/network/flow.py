"""Flow objects.

A flow is a single content transfer (a write or read of a content block)
between two endpoints.  The fabric advances flows in fluid fashion: between
rate changes each flow delivers ``current_rate_bps * dt / 8`` bytes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional

from repro.network.topology import Link, Node


class FlowState(enum.Enum):
    """Lifecycle of a flow."""

    PENDING = "pending"      #: created but not started (e.g. waiting on setup RTT)
    ACTIVE = "active"        #: transferring bytes
    FINISHED = "finished"    #: all bytes delivered
    ABORTED = "aborted"      #: cancelled before completion


class FlowKind(enum.Enum):
    """What the flow carries — used by metrics and by server selection."""

    CONTROL = "control"          #: small control/HTTP exchange (< 5 KB in the traces)
    VIDEO = "video"              #: YouTube-style video content
    DATA = "data"                #: generic datacenter content
    REPLICATION = "replication"  #: internal BS-to-BS replication traffic


class Flow:
    """A fluid flow with explicit path, demand rate and delivered rate.

    Attributes
    ----------
    demand_rate_bps:
        The rate at which the *source* tries to send (TCP window / allocated
        rate).  May exceed what the network can carry.
    current_rate_bps:
        The delivered (goodput) rate after link sharing.
    app_limit_bps:
        Rate limit imposed by the application/other resources (the
        ``R_other`` of the paper: CPU, disk).  ``inf`` when unconstrained.
    priority_weight:
        The SCDA priority weight ``℘_j`` (1.0 = best effort).
    min_rate_bps:
        Explicit SLA reservation ``M_j`` (0.0 = none).
    multiplicity:
        Number of identical user sessions this object aggregates (1 = a
        plain discrete flow).  ``current_rate_bps``/``demand_rate_bps`` are
        *aggregate* (total across the sessions, so link accounting is
        unchanged); ``size_bytes``/``remaining_bytes`` are *per-session*.
        The water-filler weighs the flow by ``multiplicity ×
        priority_weight``; ``app_limit_bps``/``min_rate_bps`` are
        per-session and scale by ``multiplicity`` at the aggregate level.
    tenant:
        Opaque tenant label for per-tenant metrics ("" = untagged).
    """

    _ids = itertools.count()

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size_bytes",
        "remaining_bytes",
        "path",
        "state",
        "kind",
        "created_at",
        "started_at",
        "finished_at",
        "demand_rate_bps",
        "current_rate_bps",
        "app_limit_bps",
        "priority_weight",
        "min_rate_bps",
        "multiplicity",
        "tenant",
        "base_rtt_s",
        "transport_state",
        "meta",
    )

    def __init__(
        self,
        src: Node,
        dst: Node,
        size_bytes: float,
        path: List[Link],
        kind: FlowKind = FlowKind.DATA,
        created_at: float = 0.0,
        priority_weight: float = 1.0,
        min_rate_bps: float = 0.0,
        app_limit_bps: float = float("inf"),
        multiplicity: int = 1,
        tenant: str = "",
        flow_id: Optional[int] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        if priority_weight <= 0:
            raise ValueError(f"priority weight must be positive, got {priority_weight}")
        if min_rate_bps < 0:
            raise ValueError(f"minimum rate must be non-negative, got {min_rate_bps}")
        if int(multiplicity) != multiplicity or multiplicity < 1:
            raise ValueError(f"multiplicity must be a positive integer, got {multiplicity}")
        self.flow_id = next(self._ids) if flow_id is None else int(flow_id)
        self.src = src
        self.dst = dst
        self.size_bytes = float(size_bytes)
        self.remaining_bytes = float(size_bytes)
        self.path = list(path)
        self.state = FlowState.PENDING
        self.kind = kind
        self.created_at = float(created_at)
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.demand_rate_bps = 0.0
        self.current_rate_bps = 0.0
        self.app_limit_bps = float(app_limit_bps)
        self.priority_weight = float(priority_weight)
        self.min_rate_bps = float(min_rate_bps)
        self.multiplicity = int(multiplicity)
        self.tenant = str(tenant)
        self.base_rtt_s = 2.0 * sum(l.delay_s for l in self.path) if self.path else 1e-4
        # Per-transport scratch space (cwnd, ssthresh, allocated rates, ...).
        self.transport_state: Dict[str, float] = {}
        self.meta: Dict[str, object] = {}

    # -- aggregate views --------------------------------------------------------
    @property
    def effective_weight(self) -> float:
        """Water-filler weight: ``multiplicity × priority_weight``."""
        if self.multiplicity == 1:
            return self.priority_weight
        return self.priority_weight * self.multiplicity

    @property
    def aggregate_app_limit_bps(self) -> float:
        """Application rate cap summed across all aggregated sessions."""
        if self.multiplicity == 1:
            return self.app_limit_bps
        return self.app_limit_bps * self.multiplicity

    @property
    def aggregate_min_rate_bps(self) -> float:
        """SLA reservation summed across all aggregated sessions."""
        if self.multiplicity == 1:
            return self.min_rate_bps
        return self.min_rate_bps * self.multiplicity

    @property
    def session_rate_bps(self) -> float:
        """Per-session delivered rate (``current_rate_bps / multiplicity``)."""
        if self.multiplicity == 1:
            return self.current_rate_bps
        return self.current_rate_bps / self.multiplicity

    # -- progress ---------------------------------------------------------------
    @property
    def transferred_bytes(self) -> float:
        """Bytes delivered so far (per session)."""
        return self.size_bytes - self.remaining_bytes

    @property
    def completion_fraction(self) -> float:
        """Fraction of the flow already delivered, in [0, 1]."""
        return self.transferred_bytes / self.size_bytes

    def start(self, now: float) -> None:
        """Mark the flow active."""
        if self.state is not FlowState.PENDING:
            raise RuntimeError(f"flow {self.flow_id} already started (state={self.state})")
        self.state = FlowState.ACTIVE
        self.started_at = now

    def advance(self, dt: float) -> float:
        """Deliver bytes for ``dt`` seconds at the current rate.

        Returns the number of bytes delivered *across all sessions*.  Each
        session progresses at ``current_rate_bps / multiplicity``; the
        delivered amount per session is clamped to ``remaining_bytes``.
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if self.state is not FlowState.ACTIVE or dt == 0.0:
            return 0.0
        if self.multiplicity == 1:
            delivered = min(self.remaining_bytes, self.current_rate_bps * dt / 8.0)
            self.remaining_bytes -= delivered
            return delivered
        per_session = min(
            self.remaining_bytes, (self.current_rate_bps / self.multiplicity) * dt / 8.0
        )
        self.remaining_bytes -= per_session
        return per_session * self.multiplicity

    def time_to_complete(self) -> float:
        """Seconds until completion at the current per-session rate."""
        if self.state is not FlowState.ACTIVE:
            return float("inf")
        if self.remaining_bytes <= 0:
            return 0.0
        if self.current_rate_bps <= 0:
            return float("inf")
        if self.multiplicity == 1:
            return self.remaining_bytes * 8.0 / self.current_rate_bps
        return self.remaining_bytes * 8.0 / (self.current_rate_bps / self.multiplicity)

    def finish(self, now: float) -> None:
        """Mark the flow finished at time ``now``."""
        self.state = FlowState.FINISHED
        self.finished_at = now
        self.remaining_bytes = 0.0
        self.current_rate_bps = 0.0
        self.demand_rate_bps = 0.0

    def abort(self, now: float) -> None:
        """Cancel the flow."""
        if self.state is FlowState.FINISHED:
            raise RuntimeError(f"flow {self.flow_id} already finished")
        self.state = FlowState.ABORTED
        self.finished_at = now
        self.current_rate_bps = 0.0
        self.demand_rate_bps = 0.0

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time (finish − creation), None until finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.created_at

    def rtt_estimate(self) -> float:
        """Base RTT plus the current queueing delays along the forward path."""
        queueing = sum(l.queueing_delay() for l in self.path)
        return self.base_rtt_s + queueing

    def uses_link(self, link: Link) -> bool:
        """True if ``link`` is on the flow's path."""
        return any(l is link for l in self.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Flow {self.flow_id} {self.src.node_id}->{self.dst.node_id} "
            f"{self.size_bytes / 1e3:.1f}KB {self.state.value}>"
        )
