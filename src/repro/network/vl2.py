"""VL2-style Clos topology (Greenberg et al., SIGCOMM 2009).

VL2 is one of the architectures the paper's RandTCP baseline stands in for:
random (VLB/ECMP) path and server selection over a folded-Clos network.  The
builder here produces the Clos interconnect; the RandTCP scheme layered on
top of it reproduces VL2's random placement behaviour.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.network.topology import Topology

GBPS = 1e9


@dataclass
class Vl2Config:
    """Parameters of the VL2 folded Clos (see :func:`build_vl2_topology`)."""

    num_intermediate: int = 2
    num_aggregation: int = 4
    num_tor: int = 4
    hosts_per_tor: int = 4
    tor_link_bps: float = 1.0 * GBPS
    agg_link_bps: float = 10.0 * GBPS
    link_delay_s: float = 0.001
    num_clients: int = 4
    client_delay_s: float = 0.050
    buffer_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_intermediate < 1:
            raise ValueError("VL2 requires at least one intermediate switch")
        if self.num_aggregation < 2:
            raise ValueError("VL2 requires at least two aggregation switches")
        if min(self.num_tor, self.hosts_per_tor) < 1:
            raise ValueError("VL2 dimensions must be >= 1")
        if self.num_clients < 1:
            raise ValueError("need at least one client")

    @property
    def num_hosts(self) -> int:
        """Total number of block-server hosts."""
        return self.num_tor * self.hosts_per_tor


def build_vl2_clos(config: Optional[Vl2Config] = None) -> Topology:
    """Config-object entry point used by the topology registry.

    Config fields mirror :func:`build_vl2_topology`'s parameters one-to-one.
    """
    return build_vl2_topology(**asdict(config or Vl2Config()))


def build_vl2_topology(
    num_intermediate: int = 2,
    num_aggregation: int = 4,
    num_tor: int = 4,
    hosts_per_tor: int = 4,
    tor_link_bps: float = 1.0 * GBPS,
    agg_link_bps: float = 10.0 * GBPS,
    link_delay_s: float = 0.001,
    num_clients: int = 4,
    client_delay_s: float = 0.050,
    buffer_bytes: Optional[float] = None,
) -> Topology:
    """Build a VL2-like folded Clos.

    * intermediate switches (level 3) form the top tier,
    * every aggregation switch (level 2) connects to every intermediate,
    * each ToR (level 1) connects to two aggregation switches,
    * hosts (level 0) hang off the ToRs.
    """
    if num_aggregation < 2:
        raise ValueError("VL2 requires at least two aggregation switches")
    topo = Topology(name="vl2-clos")

    intermediates = [topo.add_switch(f"int-{i}", level=3) for i in range(num_intermediate)]
    aggs = [topo.add_switch(f"agg-{i}", level=2) for i in range(num_aggregation)]
    for agg in aggs:
        for inter in intermediates:
            topo.add_duplex_link(agg, inter, agg_link_bps, link_delay_s, buffer_bytes)

    for t in range(num_tor):
        tor = topo.add_switch(f"tor-{t}", level=1, rack=str(t))
        # VL2 dual-homes each ToR to two aggregation switches.
        for agg in (aggs[t % num_aggregation], aggs[(t + 1) % num_aggregation]):
            topo.add_duplex_link(tor, agg, agg_link_bps, link_delay_s, buffer_bytes)
        for h in range(hosts_per_tor):
            host = topo.add_host(f"bs-{t}-{h}", level=0, rack=str(t))
            topo.add_duplex_link(host, tor, tor_link_bps, link_delay_s, buffer_bytes)

    for c in range(num_clients):
        client = topo.add_client(f"ucl-{c}")
        topo.add_duplex_link(
            client, intermediates[c % num_intermediate], tor_link_bps, client_delay_s, buffer_bytes
        )

    topo.validate()
    return topo
