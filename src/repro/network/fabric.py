"""The event-driven fabric simulator.

:class:`FabricSimulator` owns the set of active flows and advances them in a
fluid fashion:

* between events every flow delivers bytes at its ``current_rate_bps``;
* link queues integrate the difference between offered (demand) rates and
  capacity, latching loss indications when buffers overflow;
* at every *recompute point* (flow arrival, flow completion, control-interval
  tick) the attached :class:`~repro.network.transport.base.TransportModel`
  re-assigns per-flow demand and delivered rates;
* the next recompute point is the earlier of the next control tick and the
  earliest projected flow completion, so completions are honoured exactly.

The fabric is transport-agnostic: the same machinery runs the RandTCP
baseline and SCDA.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

try:  # numpy accelerates bulk flow advancement; the fabric runs without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    _np = None

from repro.network.flow import Flow, FlowKind, FlowState
from repro.network.incidence import IncidenceCache
from repro.network.routing import NoPathError, Router
from repro.network.topology import Link, Node, Topology
from repro.sim.engine import Simulator

#: Below this many active flows the pure-python advance loop beats the numpy
#: setup cost; per-flow arithmetic is bit-identical on both paths.
_VECTOR_MIN_FLOWS = 64


@dataclass
class FabricConfig:
    """Tunables of the fabric simulator.

    ``control_interval_s`` is the paper's τ: the period at which rates are
    re-evaluated even when no flow arrives or departs.
    """

    control_interval_s: float = 0.010
    completion_tolerance_bytes: float = 0.5
    max_active_flows: int = 1_000_000

    def __post_init__(self) -> None:
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if self.completion_tolerance_bytes < 0:
            raise ValueError("completion_tolerance_bytes must be non-negative")


class FabricSimulator:
    """Flow-level datacenter fabric driven by a discrete-event simulator.

    Parameters
    ----------
    sim:
        The discrete-event engine.
    topology:
        The datacenter network.
    transport:
        A transport model (see :mod:`repro.network.transport`); it is
        attached to this fabric on construction.
    router:
        Path selection; defaults to hop-count shortest path.
    config:
        Fabric tunables.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        transport: "TransportModelLike",
        router: Optional[Router] = None,
        config: Optional[FabricConfig] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.transport = transport
        self.router = router or Router(topology)
        self.config = config or FabricConfig()

        #: Active flows keyed by id (insertion-ordered) with a lazily rebuilt
        #: list snapshot — O(1) removal where the old list paid O(F) per
        #: departure, while :attr:`active_flows` keeps its list API.
        self._active: Dict[int, Flow] = {}
        self._active_list: Optional[List[Flow]] = None
        self.finished_flows: List[Flow] = []
        #: link→flows incidence over the active set, updated incrementally on
        #: every arrival/departure/reroute and shared with the water-filler
        #: and the SCDA control round (instead of each re-deriving it).
        self.incidence = IncidenceCache()
        if _np is not None:
            from repro.network.fluid_fast import DeltaWaterFiller

            DeltaWaterFiller.attach(self.incidence)
        self._last_advance = sim.now
        self._next_recompute_event = None
        self._next_tick_time = sim.now
        self.total_bytes_delivered = 0.0
        self._finish_callbacks: List[Callable[[Flow, float], None]] = []
        self._start_callbacks: List[Callable[[Flow, float], None]] = []
        self._abort_callbacks: List[Callable[[Flow, float], None]] = []
        #: ``callback(event, link, now)`` with event one of ``link-failed``,
        #: ``link-restored``, ``link-capacity`` — how control planes that
        #: cache link state (the SCDA RM/RA calculators) stay in sync with
        #: runtime topology mutations.
        self._topology_callbacks: List[Callable[[str, Link, float], None]] = []
        self._down_link_ids: Set[str] = set()
        # Dynamics accounting (read by the metrics layer).
        self.link_failures = 0
        self.link_recoveries = 0
        self.capacity_changes = 0
        self.flows_rerouted_on_failure = 0
        self.flows_aborted_on_failure = 0
        # Churn batching (see :meth:`churn`) and perf accounting.
        self._churn_depth = 0
        self._churn_pending = False
        self.recomputes = 0
        self.recomputes_coalesced = 0
        #: Links that currently hold backlog — the drain pass visits only
        #: these instead of scanning every link in the topology.
        self._queued_links: Dict[str, Link] = {}
        #: Per-fabric flow ids: flow numbering restarts at 0 for every fabric,
        #: so a run's records are identical no matter what ran earlier in the
        #: process (or concurrently in another thread) — a prerequisite for
        #: bit-identical results across executor backends.
        self._flow_ids = itertools.count()
        #: Active flows with ``multiplicity > 1`` — when zero, the vectorized
        #: advance/schedule paths skip building the multiplicity arrays
        #: entirely, keeping the all-discrete fast path untouched.
        self._aggregate_active = 0

        self.transport.attach(self)

    # -- observers -----------------------------------------------------------------
    def on_flow_finished(self, callback: Callable[[Flow, float], None]) -> None:
        """Register ``callback(flow, now)`` to run whenever a flow completes."""
        self._finish_callbacks.append(callback)

    def on_flow_started(self, callback: Callable[[Flow, float], None]) -> None:
        """Register ``callback(flow, now)`` to run whenever a flow starts."""
        self._start_callbacks.append(callback)

    def on_flow_aborted(self, callback: Callable[[Flow, float], None]) -> None:
        """Register ``callback(flow, now)`` to run whenever a flow is aborted."""
        self._abort_callbacks.append(callback)

    def remove_flow_finished_callback(self, callback: Callable[[Flow, float], None]) -> None:
        """Unregister a completion callback; a no-op if it is not registered."""
        try:
            self._finish_callbacks.remove(callback)
        except ValueError:
            pass

    def remove_flow_started_callback(self, callback: Callable[[Flow, float], None]) -> None:
        """Unregister a start callback; a no-op if it is not registered."""
        try:
            self._start_callbacks.remove(callback)
        except ValueError:
            pass

    def remove_flow_aborted_callback(self, callback: Callable[[Flow, float], None]) -> None:
        """Unregister an abort callback; a no-op if it is not registered."""
        try:
            self._abort_callbacks.remove(callback)
        except ValueError:
            pass

    def on_topology_changed(self, callback: Callable[[str, Link, float], None]) -> None:
        """Register ``callback(event, link, now)`` for runtime topology mutations."""
        self._topology_callbacks.append(callback)

    def remove_topology_changed_callback(
        self, callback: Callable[[str, Link, float], None]
    ) -> None:
        """Unregister a topology-change callback; a no-op if not registered."""
        try:
            self._topology_callbacks.remove(callback)
        except ValueError:
            pass

    def _notify_topology_changed(self, event: str, link: Link, now: float) -> None:
        for callback in self._topology_callbacks:
            callback(event, link, now)

    @property
    def active_flow_count(self) -> int:
        """Number of currently transferring flows."""
        return len(self._active)

    @property
    def active_flows(self) -> List[Flow]:
        """The currently transferring flows, in arrival order.

        The returned list is a cached snapshot rebuilt only after churn and
        declared to the incidence cache (:meth:`IncidenceCache.trust_flows`)
        so the delta water-filler can skip its O(F) membership check when
        handed this exact object.  Treat it as read-only.
        """
        lst = self._active_list
        if lst is None:
            lst = self._active_list = list(self._active.values())
        if self.incidence.trusted_flows is not lst:
            self.incidence.trust_flows(lst)
        return lst

    @contextmanager
    def churn(self) -> Iterator["FabricSimulator"]:
        """Coalesce a same-timestamp burst of flow churn into one recompute.

        Inside the block, arrivals/departures/reroutes update flow and
        incidence state immediately but defer the transport rate update and
        recompute-timer rescheduling; a single :meth:`_recompute` runs when
        the outermost block exits.  The block must not advance simulated
        time.  Nesting is allowed.
        """
        self._churn_depth += 1
        try:
            yield self
        finally:
            self._churn_depth -= 1
            if self._churn_depth == 0 and self._churn_pending:
                self._churn_pending = False
                self._recompute(self.sim.now)

    def flows_on_link(self, link: Link) -> List[Flow]:
        """Active flows whose path crosses ``link``."""
        return list(self.incidence.link_flows_map().get(link.link_id, ()))

    # -- flow lifecycle --------------------------------------------------------------
    def start_flow(
        self,
        src: Node,
        dst: Node,
        size_bytes: float,
        kind: FlowKind = FlowKind.DATA,
        created_at: Optional[float] = None,
        priority_weight: float = 1.0,
        min_rate_bps: float = 0.0,
        app_limit_bps: float = float("inf"),
        multiplicity: int = 1,
        tenant: str = "",
        path: Optional[List[Link]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> Flow:
        """Create a flow and start transferring immediately.

        ``created_at`` defaults to the current time; pass the original request
        time when connection-setup latency has already elapsed so that FCT
        accounts for it.  ``multiplicity=N`` starts an aggregate flow standing
        in for N identical sessions (see :class:`~repro.network.flow.Flow`).
        """
        if len(self._active) >= self.config.max_active_flows:
            raise RuntimeError("too many active flows; raise FabricConfig.max_active_flows")
        now = self.sim.now
        flow = Flow(
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            path=path if path is not None else self.router.path_for_new_flow(src, dst),
            kind=kind,
            created_at=now if created_at is None else created_at,
            priority_weight=priority_weight,
            min_rate_bps=min_rate_bps,
            app_limit_bps=app_limit_bps,
            multiplicity=multiplicity,
            tenant=tenant,
            flow_id=next(self._flow_ids),
        )
        if meta:
            flow.meta.update(meta)
        if not flow.path:
            raise ValueError(
                f"flow between {src.node_id} and {dst.node_id} has an empty path; "
                "src and dst must be distinct, connected nodes"
            )
        # Bring the fluid state up to date before the flow joins.
        self._advance_to(now)
        flow.start(now)
        self._active[flow.flow_id] = flow
        self._active_list = None
        if flow.multiplicity > 1:
            self._aggregate_active += 1
        self.incidence.add_flow(flow)
        self.transport.on_flow_start(flow, now)
        for callback in self._start_callbacks:
            callback(flow, now)
        self._recompute(now)
        return flow

    def abort_flow(self, flow: Flow) -> None:
        """Cancel an active flow (e.g. SLA mitigation moving it elsewhere)."""
        now = self.sim.now
        self._advance_to(now)
        if self._active.pop(flow.flow_id, None) is not None:
            self._active_list = None
            if flow.multiplicity > 1:
                self._aggregate_active -= 1
        self.incidence.remove_flow(flow)
        flow.abort(now)
        self.transport.on_flow_finish(flow, now)
        for callback in self._abort_callbacks:
            callback(flow, now)
        self._recompute(now)

    def reroute_flow(self, flow: Flow, new_path: List[Link], reason: str = "policy") -> None:
        """Move an active flow onto a different path (Hedera-style rerouting).

        ``reason`` is forwarded to the transport's
        :meth:`~repro.network.transport.base.TransportModel.on_flow_rerouted`
        hook: ``"policy"`` reroutes (Hedera moving an elephant) keep the
        transport state, while ``"failure"`` reroutes (the old path lost a
        link) let loss-based transports model the disruption, e.g. TCP
        restarting in slow start.
        """
        if flow.state is not FlowState.ACTIVE:
            raise RuntimeError(f"cannot reroute non-active flow {flow.flow_id}")
        now = self.sim.now
        self._advance_to(now)
        self.incidence.remove_flow(flow)
        flow.path = list(new_path)
        flow.base_rtt_s = 2.0 * sum(l.delay_s for l in flow.path) if flow.path else 1e-4
        self.incidence.add_flow(flow)
        self.transport.on_flow_rerouted(flow, now, reason)
        self._recompute(now)

    # -- runtime topology mutation -----------------------------------------------------
    @property
    def links_down(self) -> int:
        """Number of links currently failed."""
        return len(self._down_link_ids)

    def fail_link(self, link: Link) -> List[Flow]:
        """Take ``link`` down; reroute or abort the flows stranded on it.

        Stranded flows are moved onto a surviving path when one exists
        (``reroute_flow(..., reason="failure")``, so loss-based transports
        restart their windows); flows with no remaining path are aborted.
        Routing caches are invalidated so new flows avoid the link.  Returns
        the flows that had to be aborted.  A no-op on an already-down link.
        """
        now = self.sim.now
        if not link.up:
            return []
        self._advance_to(now)
        link.up = False
        self._down_link_ids.add(link.link_id)
        self.link_failures += 1
        self.router.invalidate_routes()
        stranded = list(self.incidence.link_flows_map().get(link.link_id, ()))
        aborted: List[Flow] = []
        # One rate recompute for the whole failure event, however many flows
        # were stranded — the per-flow reroutes/aborts all land at `now`.
        with self.churn():
            for flow in stranded:
                if flow.state is not FlowState.ACTIVE:
                    continue
                try:
                    new_path = self.router.path_for_new_flow(flow.src, flow.dst)
                except NoPathError:
                    new_path = None
                if new_path and all(l.up for l in new_path):
                    self.reroute_flow(flow, new_path, reason="failure")
                    self.flows_rerouted_on_failure += 1
                else:
                    self.abort_flow(flow)
                    self.flows_aborted_on_failure += 1
                    aborted.append(flow)
            self._notify_topology_changed("link-failed", link, now)
            self._recompute(now)
        return aborted

    def restore_link(self, link: Link) -> None:
        """Bring a failed link back up (queue state cleared; routes refreshed).

        Already-active flows keep their detour paths — like real WAN/DC
        reconvergence, only *new* flows see the restored link.  A no-op on a
        link that is already up.
        """
        now = self.sim.now
        if link.up:
            return
        self._advance_to(now)
        link.up = True
        link.queue_bytes = 0.0
        self._queued_links.pop(link.link_id, None)
        self._down_link_ids.discard(link.link_id)
        self.link_recoveries += 1
        self.router.invalidate_routes()
        self._notify_topology_changed("link-restored", link, now)
        self._recompute(now)

    def set_link_capacity(self, link: Link, capacity_bps: float) -> None:
        """Change a link's capacity at runtime (degradation or recovery).

        The shared :class:`~repro.network.incidence.IncidenceCache` never
        caches capacities, so the next water-filler solve picks the new value
        up without an epoch bump; control planes that *do* cache capacities
        are refreshed through the topology-change callbacks.
        """
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        now = self.sim.now
        self._advance_to(now)
        link.capacity_bps = float(capacity_bps)
        self.capacity_changes += 1
        self._notify_topology_changed("link-capacity", link, now)
        self._recompute(now)

    # -- fluid advancement --------------------------------------------------------------
    def _advance_to(self, now: float) -> None:
        """Integrate flow progress and link queues from the last update to ``now``."""
        dt = now - self._last_advance
        if dt < 0:
            raise RuntimeError("fabric time went backwards")
        if dt == 0.0 or not self._active:
            self._last_advance = now
            return

        if _np is not None and len(self._active) >= _VECTOR_MIN_FLOWS:
            finished = self._advance_vectorized(dt)
        else:
            finished = self._advance_python(dt)

        self._last_advance = now
        for flow in finished:
            self._finish_flow(flow, now)

    def _advance_python(self, dt: float) -> List[Flow]:
        """Per-flow advancement loop (small flow counts, or numpy absent)."""
        # Offered load per link (demand may exceed capacity — that is how
        # queues build for TCP-style transports).
        flows = self.active_flows
        offered: Dict[str, float] = {}
        touched: Dict[str, Link] = {}
        for flow in flows:
            if flow.demand_rate_bps <= 0:
                continue
            for link in flow.path:
                offered[link.link_id] = offered.get(link.link_id, 0.0) + flow.demand_rate_bps
                touched[link.link_id] = link
        queued = self._queued_links
        for link_id, link in touched.items():
            link.integrate_queue(offered[link_id], dt)
            if link.queue_bytes > 0.0:
                queued[link_id] = link
            else:
                queued.pop(link_id, None)
        self._drain_untouched(touched, dt)

        finished: List[Flow] = []
        tolerance = self.config.completion_tolerance_bytes
        for flow in flows:
            delivered = flow.advance(dt)
            self.total_bytes_delivered += delivered
            if flow.remaining_bytes <= tolerance:
                finished.append(flow)
        return finished

    def _advance_vectorized(self, dt: float) -> List[Flow]:
        """Bulk advancement over the incidence table's flat pair arrays.

        Per-flow arithmetic mirrors :meth:`Flow.advance` operation for
        operation, so the two paths produce bit-identical flow state; only
        the ``total_bytes_delivered`` accumulation order differs (pairwise
        numpy sum vs sequential adds).
        """
        np = _np
        flows = self.active_flows
        table = self.incidence.table()
        row_flows = table.row_flows
        rows = len(row_flows)
        pairs = table.pair_count
        # Offered load per link: one weighted bincount over the link×flow
        # pairs instead of a python dict accumulation.  Dead (tombstoned)
        # rows hold no demand, so scratch contributions are zero.
        demand = np.fromiter(
            (0.0 if f is None else f.demand_rate_bps for f in row_flows),
            np.float64,
            count=rows,
        )
        offered = np.bincount(
            table.pair_link[:pairs],
            weights=demand[table.pair_flow[:pairs]],
            minlength=table.num_slots,
        )
        queued = self._queued_links
        link_slots = table.link_slots
        touched: Set[str] = set()
        for slot in np.nonzero(offered)[0].tolist():
            link = link_slots[slot]
            if link is None:
                continue
            link.integrate_queue(float(offered[slot]), dt)
            touched.add(link.link_id)
            if link.queue_bytes > 0.0:
                queued[link.link_id] = link
            else:
                queued.pop(link.link_id, None)
        self._drain_untouched(touched, dt)

        # Remaining-bytes advancement: min(remaining, rate * dt / 8.0) per
        # session, exactly as Flow.advance computes it, for every flow at
        # once.  The multiplicity division only exists when an aggregate flow
        # is actually active — the all-discrete path is untouched.
        count = len(flows)
        rate = np.fromiter((f.current_rate_bps for f in flows), np.float64, count=count)
        remaining = np.fromiter((f.remaining_bytes for f in flows), np.float64, count=count)
        if self._aggregate_active:
            mult = np.fromiter((f.multiplicity for f in flows), np.float64, count=count)
            delivered = np.minimum(remaining, (rate / mult) * dt / 8.0)
            np.subtract(remaining, delivered, out=remaining)
            self.total_bytes_delivered += float((delivered * mult).sum())
        else:
            delivered = np.minimum(remaining, rate * dt / 8.0)
            np.subtract(remaining, delivered, out=remaining)
            self.total_bytes_delivered += float(delivered.sum())

        finished: List[Flow] = []
        tolerance = self.config.completion_tolerance_bytes
        for flow, rem, dlv in zip(flows, remaining.tolist(), delivered.tolist()):
            if dlv:
                flow.remaining_bytes = rem
            if rem <= tolerance:
                finished.append(flow)
        return finished

    def _drain_untouched(self, touched: "Set[str] | Dict[str, Link]", dt: float) -> None:
        """Drain backlogged links that carried no demand this interval.

        Only links the fabric has ever seen build a queue are visited (the
        ``_queued_links`` set), not the whole topology.  ``restore_link``
        clears its entry when it zeroes a queue by hand.
        """
        queued = self._queued_links
        if not queued:
            return
        for link_id in list(queued):
            if link_id in touched:
                continue
            link = queued[link_id]
            link.integrate_queue(0.0, dt)
            if link.queue_bytes <= 0.0:
                del queued[link_id]

    def _finish_flow(self, flow: Flow, now: float) -> None:
        flow.finish(now)
        if self._active.pop(flow.flow_id, None) is not None:
            self._active_list = None
            if flow.multiplicity > 1:
                self._aggregate_active -= 1
        self.incidence.remove_flow(flow)
        self.finished_flows.append(flow)
        self.transport.on_flow_finish(flow, now)
        for callback in self._finish_callbacks:
            callback(flow, now)

    # -- recompute scheduling --------------------------------------------------------------
    def _recompute(self, now: float) -> None:
        """Ask the transport for fresh rates and schedule the next recompute.

        Inside a :meth:`churn` block the call is deferred (and counted) so a
        burst of same-timestamp arrivals/departures pays for one transport
        update instead of one per event.
        """
        if self._churn_depth:
            self._churn_pending = True
            self.recomputes_coalesced += 1
            return
        self.recomputes += 1
        if self._active:
            # The cached snapshot, not a copy: the solver recognises the
            # trusted list and skips its per-call membership check.
            self.transport.update_rates(self.active_flows, now)
        self._schedule_next(now)

    def _schedule_next(self, now: float) -> None:
        if self._next_recompute_event is not None and self._next_recompute_event.pending:
            self._next_recompute_event.cancel()
            self._next_recompute_event = None
        if not self._active:
            return
        flows = self.active_flows
        if _np is not None and len(flows) >= _VECTOR_MIN_FLOWS:
            # Same arithmetic as Flow.time_to_complete, all flows at once.
            count = len(flows)
            rate = _np.fromiter((f.current_rate_bps for f in flows), _np.float64, count=count)
            if self._aggregate_active:
                mult = _np.fromiter((f.multiplicity for f in flows), _np.float64, count=count)
                rate = rate / mult
            remaining = _np.fromiter((f.remaining_bytes for f in flows), _np.float64, count=count)
            with _np.errstate(divide="ignore", invalid="ignore"):
                ttc = _np.where(
                    remaining <= 0.0,
                    0.0,
                    _np.where(rate > 0.0, remaining * 8.0 / rate, _np.inf),
                )
            earliest_completion = float(ttc.min())
        else:
            earliest_completion = min(f.time_to_complete() for f in flows)
        next_time = now + min(self.config.control_interval_s, max(earliest_completion, 0.0))
        # Guard against zero-length steps caused by floating-point round-off.
        next_time = max(next_time, now + 1e-9)
        self._next_recompute_event = self.sim.call_at(next_time, self._on_recompute_timer)

    def _on_recompute_timer(self) -> None:
        now = self.sim.now
        self._next_recompute_event = None
        self._advance_to(now)
        self._recompute(now)

    # -- draining --------------------------------------------------------------------------
    def drain(self, deadline: Optional[float] = None) -> None:
        """Run the simulator until all active flows finish (or ``deadline``)."""
        while self._active:
            next_event = self.sim.peek()
            if next_event is None:
                raise RuntimeError(
                    "fabric has active flows but no pending events; "
                    "a transport returned a zero rate for every flow"
                )
            if deadline is not None and next_event > deadline:
                break
            self.sim.step()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FabricSimulator t={self.sim.now:g} active={len(self._active)} "
            f"finished={len(self.finished_flows)}>"
        )


class TransportModelLike:
    """Protocol documenting what the fabric expects from a transport model."""

    def attach(self, fabric: FabricSimulator) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def on_flow_start(self, flow: Flow, now: float) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def on_flow_finish(self, flow: Flow, now: float) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def on_flow_rerouted(self, flow: Flow, now: float, reason: str = "policy") -> None:
        """Optional hook: a flow moved to a new path (default: no reaction)."""

    def update_rates(self, flows: Sequence[Flow], now: float) -> None:  # pragma: no cover
        raise NotImplementedError
