"""Max-min fair (water-filling) bandwidth shares.

Given a set of flows with paths over capacity-limited links, and optional
per-flow demand caps, compute the max-min fair allocation by progressive
filling.  This serves three purposes:

* the *delivered* rate of TCP flows whose windows demand more than the
  network can carry (the network itself enforces a roughly fair split at the
  bottleneck),
* the idealised reference allocation against which the SCDA distributed
  allocation (equations 2-3) is validated in the tests, and
* weighted max-min for prioritized allocation (equation 6), where a flow with
  weight ``℘`` receives ``℘`` times the share of a weight-1 flow at its
  bottleneck.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.network.flow import Flow
from repro.network.topology import Link


def max_min_shares(
    flows: Sequence[Flow],
    demand_caps: Optional[Mapping[int, float]] = None,
    weights: Optional[Mapping[int, float]] = None,
    capacity_scale: float = 1.0,
    capacity_overrides: Optional[Mapping[str, float]] = None,
) -> Dict[int, float]:
    """Compute (weighted) max-min fair rates for ``flows``.

    Parameters
    ----------
    flows:
        Active flows; each must have a non-empty ``path``.
    demand_caps:
        Optional per-flow upper bound (bits/s) keyed by ``flow_id`` — a flow
        never receives more than its cap (it is "bottlenecked elsewhere", and
        the unused share is redistributed, exactly the property equation 3 of
        the paper is designed to achieve).
    weights:
        Optional per-flow weights ``℘_j`` (default 1.0).  At a saturated link
        the remaining capacity is split proportionally to weight.
    capacity_scale:
        Multiplier applied to every link capacity (e.g. the paper's ``α``).
    capacity_overrides:
        Optional per-link capacity replacement keyed by ``link_id`` (used for
        reservation-adjusted capacities).

    Returns
    -------
    dict
        ``flow_id -> rate`` in bits/s.

    Notes
    -----
    Standard progressive-filling: repeatedly find the link whose fair share
    per unit weight is smallest, freeze the flows crossing it at that share,
    remove them, and continue.  Flows capped below their fair share are frozen
    at their cap first.  Complexity is O(L·F) per round and at most
    min(L, F) rounds — fine at the scale of these simulations.
    """
    demand_caps = dict(demand_caps or {})
    weights = dict(weights or {})

    active: List[Flow] = [f for f in flows if f.path]
    rates: Dict[int, float] = {f.flow_id: 0.0 for f in flows}
    if not active:
        return rates

    def weight_of(flow: Flow) -> float:
        w = float(weights.get(flow.flow_id, flow.priority_weight))
        if w <= 0:
            raise ValueError(f"flow {flow.flow_id} has non-positive weight {w}")
        return w

    def cap_of(flow: Flow) -> float:
        cap = demand_caps.get(flow.flow_id, float("inf"))
        if flow.app_limit_bps < cap:
            cap = flow.app_limit_bps
        return max(0.0, float(cap))

    # Remaining capacity per link and the unfrozen flows crossing it.
    link_capacity: Dict[str, float] = {}
    link_flows: Dict[str, List[Flow]] = {}
    links_by_id: Dict[str, Link] = {}
    for flow in active:
        for link in flow.path:
            if link.link_id not in link_capacity:
                base = (
                    capacity_overrides[link.link_id]
                    if capacity_overrides and link.link_id in capacity_overrides
                    else link.capacity_bps
                )
                link_capacity[link.link_id] = max(0.0, base * capacity_scale)
                link_flows[link.link_id] = []
                links_by_id[link.link_id] = link
            link_flows[link.link_id].append(flow)

    unfrozen = {f.flow_id: f for f in active}
    frozen_rate: Dict[int, float] = {}

    # First freeze any flow with a zero cap (it simply gets nothing).
    for flow in list(unfrozen.values()):
        if cap_of(flow) <= 0.0:
            frozen_rate[flow.flow_id] = 0.0
            del unfrozen[flow.flow_id]

    max_rounds = len(active) + len(link_capacity) + 1
    for _round in range(max_rounds):
        if not unfrozen:
            break
        # Fair share *per unit weight* on each still-relevant link.
        bottleneck_share = float("inf")
        for link_id, flows_on_link in link_flows.items():
            live = [f for f in flows_on_link if f.flow_id in unfrozen]
            if not live:
                continue
            weight_sum = sum(weight_of(f) for f in live)
            remaining = link_capacity[link_id] - sum(
                frozen_rate.get(f.flow_id, 0.0) for f in flows_on_link if f.flow_id in frozen_rate
            )
            remaining = max(0.0, remaining)
            share = remaining / weight_sum
            if share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share == float("inf"):
            # No capacity constraint applies; every remaining flow takes its cap.
            for flow in list(unfrozen.values()):
                frozen_rate[flow.flow_id] = cap_of(flow)
                del unfrozen[flow.flow_id]
            break

        # Any flow whose cap is below its would-be share freezes at the cap.
        capped = [
            f
            for f in unfrozen.values()
            if cap_of(f) < bottleneck_share * weight_of(f) - 1e-12
        ]
        if capped:
            for flow in capped:
                frozen_rate[flow.flow_id] = cap_of(flow)
                del unfrozen[flow.flow_id]
            continue

        # Otherwise freeze the flows on (all) bottleneck links at their share.
        froze_any = False
        for link_id, flows_on_link in link_flows.items():
            live = [f for f in flows_on_link if f.flow_id in unfrozen]
            if not live:
                continue
            weight_sum = sum(weight_of(f) for f in live)
            remaining = link_capacity[link_id] - sum(
                frozen_rate.get(f.flow_id, 0.0) for f in flows_on_link if f.flow_id in frozen_rate
            )
            remaining = max(0.0, remaining)
            share = remaining / weight_sum
            if share <= bottleneck_share + 1e-9:
                for flow in live:
                    frozen_rate[flow.flow_id] = share * weight_of(flow)
                    del unfrozen[flow.flow_id]
                froze_any = True
        if not froze_any:  # pragma: no cover - defensive
            for flow in list(unfrozen.values()):
                frozen_rate[flow.flow_id] = min(cap_of(flow), bottleneck_share * weight_of(flow))
                del unfrozen[flow.flow_id]

    rates.update(frozen_rate)
    return rates


def link_utilisation(
    flows: Iterable[Flow], rates: Mapping[int, float]
) -> Dict[str, float]:
    """Total allocated rate per link id under a given rate assignment."""
    load: Dict[str, float] = {}
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        for link in flow.path:
            load[link.link_id] = load.get(link.link_id, 0.0) + rate
    return load


def is_feasible(
    flows: Sequence[Flow], rates: Mapping[int, float], tolerance: float = 1e-6
) -> bool:
    """True if the assignment does not exceed any link capacity (within tol)."""
    load = link_utilisation(flows, rates)
    for flow in flows:
        for link in flow.path:
            if load.get(link.link_id, 0.0) > link.capacity_bps * (1.0 + tolerance):
                return False
    return True


def is_max_min_fair(
    flows: Sequence[Flow],
    rates: Mapping[int, float],
    demand_caps: Optional[Mapping[int, float]] = None,
    tolerance: float = 1e-6,
) -> bool:
    """Check the max-min property: no flow can gain without hurting a smaller one.

    A feasible allocation is max-min fair iff every flow either meets its
    demand cap or crosses at least one *saturated* link on which it has the
    largest rate (up to tolerance).
    """
    if not is_feasible(flows, rates, tolerance):
        return False
    demand_caps = dict(demand_caps or {})
    load = link_utilisation(flows, rates)
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        cap = min(demand_caps.get(flow.flow_id, float("inf")), flow.app_limit_bps)
        if rate >= cap - tolerance * max(1.0, cap):
            continue
        bottlenecked = False
        for link in flow.path:
            link_load = load.get(link.link_id, 0.0)
            if link_load >= link.capacity_bps * (1.0 - tolerance):
                max_rate_on_link = max(
                    rates.get(f.flow_id, 0.0) for f in flows if f.uses_link(link)
                )
                if rate >= max_rate_on_link - tolerance * max(1.0, max_rate_on_link):
                    bottlenecked = True
                    break
        if not bottlenecked:
            return False
    return True
