"""Max-min fair (water-filling) bandwidth shares.

Given a set of flows with paths over capacity-limited links, and optional
per-flow demand caps, compute the max-min fair allocation by progressive
filling.  This serves three purposes:

* the *delivered* rate of TCP flows whose windows demand more than the
  network can carry (the network itself enforces a roughly fair split at the
  bottleneck),
* the idealised reference allocation against which the SCDA distributed
  allocation (equations 2-3) is validated in the tests, and
* weighted max-min for prioritized allocation (equation 6), where a flow with
  weight ``℘`` receives ``℘`` times the share of a weight-1 flow at its
  bottleneck.

Two solver backends implement the same algorithm:

* ``"python"`` — the reference pure-Python progressive filling below, O(L·F)
  interpreter work per round; lowest constant overhead for small problems.
* ``"numpy"`` — :mod:`repro.network.fluid_fast`, the same rounds as numpy
  reductions over link×flow incidence arrays; 1-2 orders of magnitude faster
  from a few hundred flows up.

``solver="auto"`` (the default) picks by problem size, so every existing
call site gets the fast path at scale without changes.  Passing the fabric's
:class:`~repro.network.incidence.IncidenceCache` as ``cache`` additionally
skips rebuilding the link→flows incidence when the flow set is unchanged
since the last call.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.network.flow import Flow
from repro.network.incidence import IncidenceCache
from repro.network.topology import Link

#: Below this many flows the pure-Python solver's lower constant overhead
#: wins over numpy array setup (measured in benchmarks/; see docs/PERFORMANCE.md).
AUTO_NUMPY_MIN_FLOWS = 192

_NUMPY_AVAILABLE: Optional[bool] = None


def _numpy_available() -> bool:
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:  # pragma: no cover - numpy is present in the supported envs
            import numpy  # noqa: F401

            _NUMPY_AVAILABLE = True
        except ImportError:  # pragma: no cover - exercised only without numpy
            _NUMPY_AVAILABLE = False
    return _NUMPY_AVAILABLE


def max_min_shares(
    flows: Sequence[Flow],
    demand_caps: Optional[Mapping[int, float]] = None,
    weights: Optional[Mapping[int, float]] = None,
    capacity_scale: float = 1.0,
    capacity_overrides: Optional[Mapping[str, float]] = None,
    solver: str = "auto",
    cache: Optional[IncidenceCache] = None,
) -> Dict[int, float]:
    """Compute (weighted) max-min fair rates for ``flows``.

    Parameters
    ----------
    flows:
        Active flows; each must have a non-empty ``path``.
    demand_caps:
        Optional per-flow upper bound (bits/s) keyed by ``flow_id`` — a flow
        never receives more than its cap (it is "bottlenecked elsewhere", and
        the unused share is redistributed, exactly the property equation 3 of
        the paper is designed to achieve).
    weights:
        Optional per-flow weights ``℘_j`` (default 1.0).  At a saturated link
        the remaining capacity is split proportionally to weight.
    capacity_scale:
        Multiplier applied to every link capacity (e.g. the paper's ``α``).
    capacity_overrides:
        Optional per-link capacity replacement keyed by ``link_id`` (used for
        reservation-adjusted capacities).
    solver:
        ``"auto"`` (default: numpy from :data:`AUTO_NUMPY_MIN_FLOWS` flows up
        — the incremental delta solver when the cache carries one — pure
        Python below), ``"python"``, ``"numpy"``, or ``"incremental"``
        (delta water-filling against the cache's persistent incidence table;
        see :class:`~repro.network.fluid_fast.DeltaWaterFiller`).
    cache:
        Optional :class:`~repro.network.incidence.IncidenceCache` covering
        exactly ``flows`` — reuses the link→flows incidence instead of
        rebuilding it.  Ignored (with a full rebuild) when stale.

    Returns
    -------
    dict
        ``flow_id -> rate`` in bits/s.

    Notes
    -----
    Standard progressive-filling: repeatedly find the link whose fair share
    per unit weight is smallest, freeze the flows crossing it at that share,
    remove them, and continue.  Flows capped below their fair share are frozen
    at their cap first.  At most min(L, F) rounds; each round is O(L·F) in
    the Python backend and O(nnz) vectorized in the numpy backend.
    """
    if solver not in ("auto", "python", "numpy", "incremental"):
        raise ValueError(
            f"unknown solver {solver!r}; use 'auto', 'python', 'numpy' or 'incremental'"
        )
    if solver == "auto":
        if len(flows) >= AUTO_NUMPY_MIN_FLOWS and _numpy_available():
            # The fabric attaches a DeltaWaterFiller to its cache; when one is
            # present the auto path re-solves only the churn-dirty component.
            solver = (
                "incremental"
                if cache is not None and cache.delta is not None
                else "numpy"
            )
        else:
            solver = "python"
    if solver == "incremental":
        if not _numpy_available():  # pragma: no cover - env without numpy
            raise RuntimeError(
                "solver='incremental' requested but numpy is not installed"
            )
        from repro.network.fluid_fast import max_min_shares_incremental

        return max_min_shares_incremental(
            flows,
            demand_caps=demand_caps,
            weights=weights,
            capacity_scale=capacity_scale,
            capacity_overrides=capacity_overrides,
            cache=cache,
        )
    if solver == "numpy":
        if not _numpy_available():  # pragma: no cover - env without numpy
            raise RuntimeError("solver='numpy' requested but numpy is not installed")
        from repro.network.fluid_fast import max_min_shares_numpy

        return max_min_shares_numpy(
            flows,
            demand_caps=demand_caps,
            weights=weights,
            capacity_scale=capacity_scale,
            capacity_overrides=capacity_overrides,
            cache=cache,
        )
    return _max_min_shares_python(
        flows,
        demand_caps=demand_caps,
        weights=weights,
        capacity_scale=capacity_scale,
        capacity_overrides=capacity_overrides,
        cache=cache,
    )


def _max_min_shares_python(
    flows: Sequence[Flow],
    demand_caps: Optional[Mapping[int, float]] = None,
    weights: Optional[Mapping[int, float]] = None,
    capacity_scale: float = 1.0,
    capacity_overrides: Optional[Mapping[str, float]] = None,
    cache: Optional[IncidenceCache] = None,
) -> Dict[int, float]:
    """The reference pure-Python progressive filling."""
    demand_caps = dict(demand_caps or {})
    weights = dict(weights or {})

    active: List[Flow] = [f for f in flows if f.path]
    rates: Dict[int, float] = {f.flow_id: 0.0 for f in flows}
    if not active:
        return rates

    def weight_of(flow: Flow) -> float:
        # Explicit weights are per-session, like priority_weight: an
        # aggregate of N sessions weighs N times its per-session weight.
        w = float(weights.get(flow.flow_id, flow.priority_weight))
        if w <= 0:
            raise ValueError(f"flow {flow.flow_id} has non-positive weight {w}")
        if flow.multiplicity != 1:
            w *= flow.multiplicity
        return w

    def cap_of(flow: Flow) -> float:
        cap = demand_caps.get(flow.flow_id, float("inf"))
        app_limit = flow.aggregate_app_limit_bps
        if app_limit < cap:
            cap = app_limit
        return max(0.0, float(cap))

    # Remaining capacity per link and the flows crossing it — reuse the
    # fabric's incidence when it covers exactly this flow set.
    link_flows, links_by_id = _incidence_for(flows, cache)
    link_capacity: Dict[str, float] = {}
    for link_id, link in links_by_id.items():
        base = (
            capacity_overrides[link_id]
            if capacity_overrides and link_id in capacity_overrides
            else link.capacity_bps
        )
        link_capacity[link_id] = max(0.0, base * capacity_scale)

    unfrozen = {f.flow_id: f for f in active}
    frozen_rate: Dict[int, float] = {}

    # First freeze any flow with a zero cap (it simply gets nothing).
    for flow in list(unfrozen.values()):
        if cap_of(flow) <= 0.0:
            frozen_rate[flow.flow_id] = 0.0
            del unfrozen[flow.flow_id]

    def live_share(flows_on_link: Sequence[Flow], capacity: float):
        """Fair share per unit weight on a link, and its unfrozen flows.

        Returns ``(None, ())`` when no unfrozen flow crosses the link.  The
        remaining capacity subtracts what the already-frozen flows consume.
        """
        live = [f for f in flows_on_link if f.flow_id in unfrozen]
        if not live:
            return None, ()
        weight_sum = sum(weight_of(f) for f in live)
        remaining = capacity - sum(
            frozen_rate[f.flow_id] for f in flows_on_link if f.flow_id in frozen_rate
        )
        return max(0.0, remaining) / weight_sum, live

    max_rounds = len(active) + len(link_capacity) + 1
    for _round in range(max_rounds):
        if not unfrozen:
            break
        # Fair share *per unit weight* on each still-relevant link.
        bottleneck_share = float("inf")
        for link_id, flows_on_link in link_flows.items():
            share, _live = live_share(flows_on_link, link_capacity[link_id])
            if share is not None and share < bottleneck_share:
                bottleneck_share = share
        if bottleneck_share == float("inf"):
            # No capacity constraint applies; every remaining flow takes its cap.
            for flow in list(unfrozen.values()):
                frozen_rate[flow.flow_id] = cap_of(flow)
                del unfrozen[flow.flow_id]
            break

        # Any flow whose cap is below its would-be share freezes at the cap.
        capped = [
            f
            for f in unfrozen.values()
            if cap_of(f) < bottleneck_share * weight_of(f) - 1e-12
        ]
        if capped:
            for flow in capped:
                frozen_rate[flow.flow_id] = cap_of(flow)
                del unfrozen[flow.flow_id]
            continue

        # Otherwise freeze the flows on (all) bottleneck links at their share.
        froze_any = False
        for link_id, flows_on_link in link_flows.items():
            share, live = live_share(flows_on_link, link_capacity[link_id])
            if share is None:
                continue
            if share <= bottleneck_share + 1e-9:
                for flow in live:
                    frozen_rate[flow.flow_id] = share * weight_of(flow)
                    del unfrozen[flow.flow_id]
                froze_any = True
        if not froze_any:  # pragma: no cover - defensive
            for flow in list(unfrozen.values()):
                frozen_rate[flow.flow_id] = min(cap_of(flow), bottleneck_share * weight_of(flow))
                del unfrozen[flow.flow_id]

    rates.update(frozen_rate)
    return rates


def _build_incidence(
    flows: Iterable[Flow],
) -> Tuple[Dict[str, List[Flow]], Dict[str, Link]]:
    """One-shot ``link_id -> flows`` map and link table (no cache available)."""
    link_flows: Dict[str, List[Flow]] = {}
    links_by_id: Dict[str, Link] = {}
    for flow in flows:
        for link in flow.path:
            bucket = link_flows.get(link.link_id)
            if bucket is None:
                bucket = link_flows[link.link_id] = []
                links_by_id[link.link_id] = link
            bucket.append(flow)
    return link_flows, links_by_id


def _incidence_for(
    flows: Sequence[Flow], cache: Optional[IncidenceCache]
) -> Tuple[Mapping[str, List[Flow]], Dict[str, Link]]:
    """Shared incidence lookup: the cache when current, a fresh build otherwise."""
    if cache is not None and cache.matches(flows):
        return cache.link_flows_map(), {l.link_id: l for l in cache.links}
    return _build_incidence(f for f in flows if f.path)


def link_utilisation(
    flows: Sequence[Flow],
    rates: Mapping[int, float],
    cache: Optional[IncidenceCache] = None,
) -> Dict[str, float]:
    """Total allocated rate per link id under a given rate assignment."""
    link_flows, _links = _incidence_for(flows, cache)
    get = rates.get
    return {
        link_id: sum(get(f.flow_id, 0.0) for f in bucket)
        for link_id, bucket in link_flows.items()
    }


def is_feasible(
    flows: Sequence[Flow],
    rates: Mapping[int, float],
    tolerance: float = 1e-6,
    cache: Optional[IncidenceCache] = None,
) -> bool:
    """True if the assignment does not exceed any link capacity (within tol)."""
    link_flows, links_by_id = _incidence_for(flows, cache)
    get = rates.get
    for link_id, bucket in link_flows.items():
        load = sum(get(f.flow_id, 0.0) for f in bucket)
        if load > links_by_id[link_id].capacity_bps * (1.0 + tolerance):
            return False
    return True


def is_max_min_fair(
    flows: Sequence[Flow],
    rates: Mapping[int, float],
    demand_caps: Optional[Mapping[int, float]] = None,
    tolerance: float = 1e-6,
    cache: Optional[IncidenceCache] = None,
) -> bool:
    """Check the max-min property: no flow can gain without hurting a smaller one.

    A feasible allocation is max-min fair iff every flow either meets its
    demand cap or crosses at least one *saturated* link on which it has the
    largest rate (up to tolerance).
    """
    link_flows, _links = _incidence_for(flows, cache)
    get = rates.get
    load = {
        link_id: sum(get(f.flow_id, 0.0) for f in bucket)
        for link_id, bucket in link_flows.items()
    }
    for link_id, total in load.items():
        if total > _links[link_id].capacity_bps * (1.0 + tolerance):
            return False
    demand_caps = dict(demand_caps or {})
    for flow in flows:
        rate = get(flow.flow_id, 0.0)
        cap = min(demand_caps.get(flow.flow_id, float("inf")), flow.aggregate_app_limit_bps)
        if rate >= cap - tolerance * max(1.0, cap):
            continue
        bottlenecked = False
        for link in flow.path:
            link_load = load.get(link.link_id, 0.0)
            if link_load >= link.capacity_bps * (1.0 - tolerance):
                max_rate_on_link = max(
                    get(f.flow_id, 0.0) for f in link_flows[link.link_id]
                )
                if rate >= max_rate_on_link - tolerance * max(1.0, max_rate_on_link):
                    bottlenecked = True
                    break
        if not bottlenecked:
            return False
    return True
