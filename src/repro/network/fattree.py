"""k-ary fat-tree topology (Al-Fares et al., SIGCOMM 2008).

Provided as one of the "general network topologies" of the paper's Section IX
— SCDA's RM/RA mechanism only needs per-link rate computation and a routing
table, so it runs unchanged on a fat tree.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.network.topology import Topology

GBPS = 1e9


@dataclass
class FatTreeConfig:
    """Parameters of the k-ary fat tree (see :func:`build_fat_tree`)."""

    k: int = 4
    link_bandwidth_bps: float = 1.0 * GBPS
    link_delay_s: float = 0.001
    num_clients: int = 4
    client_delay_s: float = 0.050
    buffer_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {self.k}")
        if self.link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.num_clients < 1:
            raise ValueError("need at least one client")

    @property
    def num_hosts(self) -> int:
        """Total number of block-server hosts: ``k^3 / 4``."""
        return self.k * self.k * self.k // 4


def build_fat_tree_topology(config: Optional[FatTreeConfig] = None) -> Topology:
    """Config-object entry point used by the topology registry.

    Config fields mirror :func:`build_fat_tree`'s parameters one-to-one.
    """
    return build_fat_tree(**asdict(config or FatTreeConfig()))


def build_fat_tree(
    k: int = 4,
    link_bandwidth_bps: float = 1.0 * GBPS,
    link_delay_s: float = 0.001,
    num_clients: int = 4,
    client_delay_s: float = 0.050,
    buffer_bytes: Optional[float] = None,
) -> Topology:
    """Build a k-ary fat tree.

    A k-ary fat tree has ``k`` pods; each pod has ``k/2`` edge and ``k/2``
    aggregation switches; there are ``(k/2)^2`` core switches; each edge
    switch serves ``k/2`` hosts.  ``k`` must be even and >= 2.

    Levels are assigned: hosts 0, edge 1, aggregation 2, core 3 — matching
    the level numbering used by the RM/RA hierarchy.  Note that unlike the
    simple tree, a fat-tree node has several parents; tree-only helpers such
    as :meth:`Topology.parent` return one of them arbitrarily, and routing
    should use the router classes instead.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")

    topo = Topology(name=f"fat-tree-k{k}")
    half = k // 2

    cores = [topo.add_switch(f"core-{i}", level=3) for i in range(half * half)]

    for pod in range(k):
        aggs = [topo.add_switch(f"agg-{pod}-{i}", level=2, pod=pod) for i in range(half)]
        edges = [topo.add_switch(f"edge-{pod}-{i}", level=1, pod=pod) for i in range(half)]

        for a, agg in enumerate(aggs):
            # Each aggregation switch connects to ``half`` core switches.
            for c in range(half):
                core = cores[a * half + c]
                topo.add_duplex_link(agg, core, link_bandwidth_bps, link_delay_s, buffer_bytes)
            for edge in edges:
                topo.add_duplex_link(edge, agg, link_bandwidth_bps, link_delay_s, buffer_bytes)

        for e, edge in enumerate(edges):
            for h in range(half):
                host = topo.add_host(
                    f"bs-{pod}-{e}-{h}", level=0, pod=pod, rack=f"{pod}-{e}"
                )
                topo.add_duplex_link(host, edge, link_bandwidth_bps, link_delay_s, buffer_bytes)

    for c in range(num_clients):
        client = topo.add_client(f"ucl-{c}")
        # Clients attach to core switches round-robin.
        topo.add_duplex_link(
            client, cores[c % len(cores)], link_bandwidth_bps, client_delay_s, buffer_bytes
        )

    topo.validate()
    return topo
