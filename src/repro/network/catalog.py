"""Built-in topology registrations.

Importing this module (done lazily by :mod:`repro.registry`) registers the
four shipped fabrics.  Every builder takes one optional config object — the
entry's ``config_cls`` — so :class:`~repro.experiments.spec.ScenarioSpec` can
construct it from plain JSON parameters.
"""

from __future__ import annotations

from repro.network.fattree import FatTreeConfig, build_fat_tree_topology
from repro.network.leafspine import LeafSpineConfig, build_leaf_spine_topology
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.network.vl2 import Vl2Config, build_vl2_clos
from repro.registry import TOPOLOGIES

TOPOLOGIES.register(
    "tree",
    build_tree_topology,
    config_cls=TreeTopologyConfig,
    description="3-tier tree of the paper's Figures 1 and 6 (heterogeneous K·X links)",
    aliases=("scda-tree", "3tier"),
)

TOPOLOGIES.register(
    "fattree",
    build_fat_tree_topology,
    config_cls=FatTreeConfig,
    description="k-ary fat tree (Al-Fares et al., SIGCOMM 2008), k^3/4 hosts",
    aliases=("fat-tree",),
)

TOPOLOGIES.register(
    "vl2",
    build_vl2_clos,
    config_cls=Vl2Config,
    description="VL2-style folded Clos (Greenberg et al., SIGCOMM 2009)",
    aliases=("vl2-clos", "clos"),
)

TOPOLOGIES.register(
    "leafspine",
    build_leaf_spine_topology,
    config_cls=LeafSpineConfig,
    description="two-tier leaf-spine fabric (every leaf connects to every spine)",
    aliases=("leaf-spine",),
)
