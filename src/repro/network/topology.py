"""Topology primitives: nodes, directed links, and the topology graph.

Conventions
-----------
* A physical cable is represented by **two directed links**, one per
  direction.  SCDA's rate metric distinguishes uplink and downlink rates of
  every cable (the ``d``/``u`` subscripts of the paper), so directed links are
  the natural unit.
* "Uplink" means towards the core of the datacenter tree (increasing level),
  "downlink" means towards the servers (decreasing level).  For non-tree
  topologies the distinction is stored per link as a plain direction flag.
* Capacities are bits/second; delays are seconds; queue sizes are bytes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class NodeKind(enum.Enum):
    """Role of a node in the datacenter."""

    HOST = "host"          #: a server (block server, name node, front end)
    SWITCH = "switch"      #: an internal switch/router
    CLIENT = "client"      #: an external user client (UCL)


@dataclass
class Node:
    """A vertex of the datacenter graph.

    Attributes
    ----------
    node_id:
        Unique string identifier, e.g. ``"bs-3"`` or ``"agg-1"``.
    kind:
        Host, switch or external client.
    level:
        Tree level: hosts are level 0, ToR switches level 1, aggregation
        level 2, core level 3 (``hmax``).  Clients use level -1.
    attrs:
        Free-form attributes (rack id, pod id, power profile name, ...).
    """

    node_id: str
    kind: NodeKind
    level: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.node_id!r}, {self.kind.value}, level={self.level})"


class Link:
    """A directed link with capacity, propagation delay and a fluid queue.

    The queue holds the backlog (bytes) that has been sent into the link above
    its drain capacity; it produces queueing delay ``queue_bytes*8/capacity``
    and, when it exceeds ``buffer_bytes``, a loss indication that transports
    may react to.
    """

    _ids = itertools.count()

    __slots__ = (
        "link_id",
        "src",
        "dst",
        "capacity_bps",
        "nominal_capacity_bps",
        "delay_s",
        "buffer_bytes",
        "is_uplink",
        "up",
        "queue_bytes",
        "loss_events",
        "_loss_in_interval",
        "bytes_carried",
        "attrs",
    )

    def __init__(
        self,
        src: Node,
        dst: Node,
        capacity_bps: float,
        delay_s: float,
        buffer_bytes: Optional[float] = None,
        is_uplink: bool = False,
        link_id: Optional[str] = None,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        self.link_id = link_id or f"link-{next(self._ids)}:{src.node_id}->{dst.node_id}"
        self.src = src
        self.dst = dst
        self.capacity_bps = float(capacity_bps)
        #: the as-built capacity; dynamics events degrade/restore relative to it
        self.nominal_capacity_bps = float(capacity_bps)
        self.delay_s = float(delay_s)
        # Default buffer: one bandwidth-delay product at 100 ms, a common
        # shallow-buffer datacenter setting.
        self.buffer_bytes = (
            float(buffer_bytes)
            if buffer_bytes is not None
            else self.capacity_bps * 0.1 / 8.0
        )
        self.is_uplink = bool(is_uplink)
        #: False while the link is failed; routers skip down links and the
        #: fabric reroutes or aborts flows stranded on them (see
        #: :meth:`repro.network.fabric.FabricSimulator.fail_link`).
        self.up = True
        self.queue_bytes = 0.0
        self.loss_events = 0
        self._loss_in_interval = False
        self.bytes_carried = 0.0
        self.attrs: Dict[str, object] = {}

    # -- queue dynamics -----------------------------------------------------------
    def queueing_delay(self) -> float:
        """Current queueing delay (seconds) caused by the backlog."""
        return self.queue_bytes * 8.0 / self.capacity_bps

    def integrate_queue(self, offered_bps: float, dt: float) -> None:
        """Advance the fluid queue by ``dt`` seconds given ``offered_bps`` input.

        Backlog grows when the offered load exceeds capacity and drains
        otherwise.  A loss indication is latched when the backlog would exceed
        the buffer; the excess is dropped (the queue is clamped to the buffer).
        """
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        if dt == 0:
            return
        delta_bytes = (offered_bps - self.capacity_bps) * dt / 8.0
        new_queue = self.queue_bytes + delta_bytes
        if new_queue > self.buffer_bytes:
            self._loss_in_interval = True
            self.loss_events += 1
            new_queue = self.buffer_bytes
        self.queue_bytes = max(0.0, new_queue)
        # Account for traffic actually carried (cannot exceed capacity).
        self.bytes_carried += min(offered_bps, self.capacity_bps) * dt / 8.0

    def consume_loss_flag(self) -> bool:
        """Return and clear the 'loss happened since last check' flag."""
        flag = self._loss_in_interval
        self._loss_in_interval = False
        return flag

    def reset_state(self) -> None:
        """Clear queue/loss/carried-byte state (used between experiments)."""
        self.queue_bytes = 0.0
        self.loss_events = 0
        self._loss_in_interval = False
        self.bytes_carried = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        gbps = self.capacity_bps / 1e9
        return f"Link({self.src.node_id}->{self.dst.node_id}, {gbps:g} Gbps)"


class Topology:
    """A directed multigraph of :class:`Node` and :class:`Link`.

    The topology also exposes tree-structure helpers (parents/children by
    level) used by the RM/RA hierarchy, but it does not *require* a tree; the
    general-topology code paths (Section IX) only use the adjacency queries.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}
        self._out: Dict[str, List[Link]] = {}
        self._in: Dict[str, List[Link]] = {}

    # -- construction ---------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add ``node``; adding the same id twice is an error."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._out[node.node_id] = []
        self._in[node.node_id] = []
        return node

    def add_host(self, node_id: str, level: int = 0, **attrs: object) -> Node:
        """Convenience: add a host node."""
        return self.add_node(Node(node_id, NodeKind.HOST, level, dict(attrs)))

    def add_switch(self, node_id: str, level: int, **attrs: object) -> Node:
        """Convenience: add a switch node."""
        return self.add_node(Node(node_id, NodeKind.SWITCH, level, dict(attrs)))

    def add_client(self, node_id: str, **attrs: object) -> Node:
        """Convenience: add an external client node."""
        return self.add_node(Node(node_id, NodeKind.CLIENT, -1, dict(attrs)))

    def add_link(
        self,
        src: Node,
        dst: Node,
        capacity_bps: float,
        delay_s: float,
        buffer_bytes: Optional[float] = None,
        is_uplink: Optional[bool] = None,
    ) -> Link:
        """Add a single directed link from ``src`` to ``dst``."""
        for node in (src, dst):
            if node.node_id not in self._nodes:
                raise KeyError(f"node {node.node_id!r} not in topology")
        if is_uplink is None:
            is_uplink = dst.level > src.level
        link = Link(src, dst, capacity_bps, delay_s, buffer_bytes, is_uplink)
        self._links[link.link_id] = link
        self._out[src.node_id].append(link)
        self._in[dst.node_id].append(link)
        return link

    def add_duplex_link(
        self,
        a: Node,
        b: Node,
        capacity_bps: float,
        delay_s: float,
        buffer_bytes: Optional[float] = None,
    ) -> Tuple[Link, Link]:
        """Add both directions of a cable between ``a`` and ``b``."""
        up = self.add_link(a, b, capacity_bps, delay_s, buffer_bytes)
        down = self.add_link(b, a, capacity_bps, delay_s, buffer_bytes)
        return up, down

    # -- queries ----------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> List[Link]:
        """All directed links, in insertion order."""
        return list(self._links.values())

    def node(self, node_id: str) -> Node:
        """Look up a node by id."""
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        """True if a node with that id exists."""
        return node_id in self._nodes

    def hosts(self) -> List[Node]:
        """All host nodes."""
        return [n for n in self._nodes.values() if n.kind is NodeKind.HOST]

    def switches(self) -> List[Node]:
        """All switch nodes."""
        return [n for n in self._nodes.values() if n.kind is NodeKind.SWITCH]

    def clients(self) -> List[Node]:
        """All external client nodes."""
        return [n for n in self._nodes.values() if n.kind is NodeKind.CLIENT]

    def out_links(self, node: Node) -> List[Link]:
        """Directed links leaving ``node``."""
        return list(self._out[node.node_id])

    def in_links(self, node: Node) -> List[Link]:
        """Directed links entering ``node``."""
        return list(self._in[node.node_id])

    def neighbors(self, node: Node) -> List[Node]:
        """Nodes reachable over one outgoing link."""
        return [link.dst for link in self._out[node.node_id]]

    def find_link(self, src: Node, dst: Node) -> Link:
        """The first directed link from ``src`` to ``dst`` (KeyError if none)."""
        for link in self._out[src.node_id]:
            if link.dst.node_id == dst.node_id:
                return link
        raise KeyError(f"no link {src.node_id} -> {dst.node_id}")

    def uplink_of(self, node: Node) -> Optional[Link]:
        """The (first) link from ``node`` towards a higher level, if any."""
        candidates = [l for l in self._out[node.node_id] if l.dst.level > node.level]
        return candidates[0] if candidates else None

    def downlink_to(self, node: Node) -> Optional[Link]:
        """The (first) link into ``node`` from a higher level, if any."""
        candidates = [l for l in self._in[node.node_id] if l.src.level > node.level]
        return candidates[0] if candidates else None

    def parent(self, node: Node) -> Optional[Node]:
        """The tree parent (unique higher-level neighbour), if any."""
        uplink = self.uplink_of(node)
        return uplink.dst if uplink is not None else None

    def children(self, node: Node) -> List[Node]:
        """Lower-level neighbours of ``node`` (its tree children)."""
        return [l.dst for l in self._out[node.node_id] if l.dst.level < node.level]

    def max_level(self) -> int:
        """The highest level present among switches (``hmax`` in the paper)."""
        levels = [n.level for n in self._nodes.values() if n.kind is NodeKind.SWITCH]
        return max(levels) if levels else 0

    def levels(self) -> Dict[int, List[Node]]:
        """Nodes grouped by level."""
        grouped: Dict[int, List[Node]] = {}
        for node in self._nodes.values():
            grouped.setdefault(node.level, []).append(node)
        return grouped

    def reset_links(self) -> None:
        """Reset queue/loss state on every link."""
        for link in self._links.values():
            link.reset_state()

    # -- iteration / sizing --------------------------------------------------------------
    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Topology {self.name!r}: {len(self._nodes)} nodes, "
            f"{len(self._links)} links>"
        )

    # -- export -----------------------------------------------------------------------------
    def to_dot(self, include_capacities: bool = True) -> str:
        """Render the topology as a Graphviz ``dot`` graph.

        Each duplex pair of directed links is drawn as one undirected edge
        (labelled with the capacity in Gb/s when ``include_capacities``);
        hosts, switches and clients get distinct shapes so the figure-1-style
        structure is visible with any dot renderer.
        """
        shape_of = {
            NodeKind.HOST: "box",
            NodeKind.SWITCH: "ellipse",
            NodeKind.CLIENT: "diamond",
        }
        lines = [f'graph "{self.name}" {{', "  rankdir=BT;"]
        for node in self._nodes.values():
            lines.append(
                f'  "{node.node_id}" [shape={shape_of[node.kind]}, label="{node.node_id}"];'
            )
        seen_pairs = set()
        for link in self._links.values():
            key = tuple(sorted((link.src.node_id, link.dst.node_id)))
            if key in seen_pairs:
                continue
            seen_pairs.add(key)
            label = f' [label="{link.capacity_bps / 1e9:g}G"]' if include_capacities else ""
            lines.append(f'  "{key[0]}" -- "{key[1]}"{label};')
        lines.append("}")
        return "\n".join(lines)

    # -- validation -------------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on problems.

        * every link endpoint is a registered node,
        * every host/client has at least one outgoing and one incoming link,
        * capacities and delays are positive/non-negative.
        """
        problems: List[str] = []
        for link in self._links.values():
            for endpoint in (link.src, link.dst):
                if endpoint.node_id not in self._nodes:
                    problems.append(f"link {link.link_id} endpoint {endpoint.node_id} missing")
        for node in self._nodes.values():
            if node.kind in (NodeKind.HOST, NodeKind.CLIENT):
                if not self._out[node.node_id]:
                    problems.append(f"{node.node_id} has no outgoing link")
                if not self._in[node.node_id]:
                    problems.append(f"{node.node_id} has no incoming link")
        if problems:
            raise ValueError("invalid topology: " + "; ".join(problems))
