"""Oracle transport: instantaneous centralised max-min allocation.

This is not part of the paper; it is an upper bound used by the tests and the
ablation benchmarks.  Every recompute point the allocation jumps straight to
the weighted max-min fair rates with full knowledge of all flows — the best
any distributed scheme (including SCDA) can converge to.
"""

from __future__ import annotations

from typing import Sequence

from repro.network.flow import Flow
from repro.network.fluid import max_min_shares
from repro.network.transport.base import TransportModel


class IdealMaxMinTransport(TransportModel):
    """Centralised, instantaneous, weighted max-min fair allocation."""

    name = "ideal-maxmin"

    def __init__(self, utilisation: float = 1.0) -> None:
        super().__init__()
        if not (0.0 < utilisation <= 1.0):
            raise ValueError("utilisation must be in (0, 1]")
        self.utilisation = float(utilisation)

    def update_rates(self, flows: Sequence[Flow], now: float) -> None:
        rates = max_min_shares(
            flows,
            capacity_scale=self.utilisation,
            cache=getattr(self.fabric, "incidence", None),
        )
        for flow in flows:
            rate = rates[flow.flow_id]
            flow.demand_rate_bps = rate
            flow.current_rate_bps = rate
