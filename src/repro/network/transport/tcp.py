"""Flow-level TCP model — the rate-control half of the RandTCP baseline.

The paper's baseline ("RandTCP") relies on standard TCP (Jacobson congestion
avoidance and control) to determine sending rates.  We model TCP at flow
granularity, reproducing the phenomena the paper attributes RandTCP's poor
FCT/throughput to:

* **slow start** — a new flow starts at a couple of segments per RTT and
  needs several RTTs to reach its fair share, which dominates the completion
  time of short flows;
* **AIMD oscillation** — once queues overflow, every flow crossing the lossy
  link halves its window, then climbs back linearly, so long flows hover
  below the link share;
* **queue-induced RTT inflation** — standing queues at congested links
  stretch the RTT, which further slows window growth.

The *delivered* rate of each flow is the max-min share of the network given
every flow's window-derived demand, i.e. the network enforces an
approximately fair split at the bottleneck while the window dynamics decide
how much each source offers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Set

from repro.network.flow import Flow
from repro.network.fluid import max_min_shares
from repro.network.transport.base import TransportModel


@dataclass
class TcpConfig:
    """Parameters of the flow-level TCP model."""

    mss_bytes: float = 1460.0            #: maximum segment size
    initial_window_segments: float = 2.0 #: IW (RFC 5681-era default)
    #: Initial slow-start threshold.  NS-2's TCP starts with an effectively
    #: unbounded ssthresh (slow start runs until the first loss), which is the
    #: behaviour the paper's RandTCP baseline exhibits; the classic 64 KB value
    #: can be set here to model more conservative stacks.
    initial_ssthresh_bytes: float = float("inf")
    min_window_segments: float = 1.0     #: floor after a loss
    max_window_bytes: float = 16 * 1024 * 1024.0  #: receive-window cap
    loss_backoff: float = 0.5            #: multiplicative decrease factor
    ack_every_bytes: float = 2 * 1460.0  #: delayed-ACK granularity (unused knob kept for clarity)

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")
        if not (0.0 < self.loss_backoff < 1.0):
            raise ValueError("loss_backoff must be in (0, 1)")
        if self.initial_window_segments < self.min_window_segments:
            raise ValueError("initial window cannot be below the minimum window")


class TcpTransport(TransportModel):
    """Flow-level TCP (slow start + AIMD) with shared-bottleneck fairness."""

    name = "tcp"

    def __init__(self, config: TcpConfig | None = None) -> None:
        super().__init__()
        self.config = config or TcpConfig()
        self._last_update: Dict[int, float] = {}

    # -- lifecycle hooks ------------------------------------------------------------
    def on_flow_start(self, flow: Flow, now: float) -> None:
        cfg = self.config
        flow.transport_state["cwnd"] = cfg.initial_window_segments * cfg.mss_bytes
        flow.transport_state["ssthresh"] = min(cfg.initial_ssthresh_bytes, cfg.max_window_bytes)
        flow.transport_state["losses"] = 0.0
        self._last_update[flow.flow_id] = now

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        self._last_update.pop(flow.flow_id, None)

    def on_flow_rerouted(self, flow: Flow, now: float, reason: str = "policy") -> None:
        """A failure reroute is a timeout+reconnect: restart in slow start.

        Policy reroutes (Hedera) are transparent to the endpoints and leave
        the window untouched.
        """
        if reason != "failure":
            return
        cfg = self.config
        state = flow.transport_state
        cwnd = state.get("cwnd", cfg.initial_window_segments * cfg.mss_bytes)
        state["ssthresh"] = max(
            cwnd * cfg.loss_backoff, cfg.min_window_segments * cfg.mss_bytes
        )
        state["cwnd"] = cfg.initial_window_segments * cfg.mss_bytes
        state["losses"] = state.get("losses", 0.0) + 1.0
        self._last_update[flow.flow_id] = now

    # -- rate assignment --------------------------------------------------------------
    def update_rates(self, flows: Sequence[Flow], now: float) -> None:
        cfg = self.config

        # 1. Collect per-link loss indications accumulated by the fabric since
        #    the previous update (buffer overflows during queue integration).
        lossy_links: Set[str] = set()
        seen: Set[str] = set()
        for flow in flows:
            for link in flow.path:
                if link.link_id in seen:
                    continue
                seen.add(link.link_id)
                if link.consume_loss_flag():
                    lossy_links.add(link.link_id)

        # 2. Evolve each flow's window.
        demands: Dict[int, float] = {}
        for flow in flows:
            state = flow.transport_state
            if "cwnd" not in state:  # flow started outside on_flow_start (defensive)
                self.on_flow_start(flow, now)
                state = flow.transport_state
            last = self._last_update.get(flow.flow_id, now)
            dt = max(0.0, now - last)
            self._last_update[flow.flow_id] = now

            rtt = max(flow.rtt_estimate(), 1e-4)
            cwnd = state["cwnd"]
            ssthresh = state["ssthresh"]

            if any(link.link_id in lossy_links for link in flow.path):
                # Multiplicative decrease on loss.
                ssthresh = max(cwnd * cfg.loss_backoff, cfg.min_window_segments * cfg.mss_bytes)
                cwnd = max(ssthresh, cfg.min_window_segments * cfg.mss_bytes)
                state["losses"] += 1.0
            elif dt > 0.0:
                rtts_elapsed = dt / rtt
                if cwnd < ssthresh:
                    # Slow start: the window doubles every RTT (capped at ssthresh).
                    cwnd = min(cwnd * (2.0 ** rtts_elapsed), ssthresh)
                    # If we crossed ssthresh mid-interval, the rest of the time
                    # grows linearly; a small correction that matters for long dt.
                    if cwnd >= ssthresh:
                        cwnd = min(cwnd + cfg.mss_bytes * rtts_elapsed, cfg.max_window_bytes)
                else:
                    # Congestion avoidance: one MSS per RTT.
                    cwnd = min(cwnd + cfg.mss_bytes * rtts_elapsed, cfg.max_window_bytes)

            cwnd = min(max(cwnd, cfg.min_window_segments * cfg.mss_bytes), cfg.max_window_bytes)
            state["cwnd"] = cwnd
            state["ssthresh"] = ssthresh

            demand_bps = cwnd * 8.0 / rtt
            if flow.multiplicity != 1:
                # One window per aggregated session: the aggregate offers N
                # times the per-session window demand.
                demand_bps *= flow.multiplicity
            demand_bps = min(demand_bps, flow.aggregate_app_limit_bps)
            demands[flow.flow_id] = demand_bps

        # 3. The network delivers the max-min share of the offered demands.
        delivered = max_min_shares(
            flows, demand_caps=demands, cache=getattr(self.fabric, "incidence", None)
        )
        for flow in flows:
            flow.demand_rate_bps = demands[flow.flow_id]
            flow.current_rate_bps = delivered[flow.flow_id]

    # -- diagnostics -----------------------------------------------------------------
    @staticmethod
    def window_of(flow: Flow) -> float:
        """Current congestion window of ``flow`` in bytes (0 if unknown)."""
        return float(flow.transport_state.get("cwnd", 0.0))

    @staticmethod
    def losses_of(flow: Flow) -> int:
        """Number of loss events the flow has reacted to."""
        return int(flow.transport_state.get("losses", 0.0))
