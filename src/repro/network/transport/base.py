"""Transport model interface."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.network.flow import Flow


class TransportModel:
    """Decides the demand and delivered rate of every active flow.

    Subclasses implement :meth:`update_rates`; the fabric calls it at every
    recompute point (flow arrival, completion, control tick) after having
    advanced the fluid state up to ``now``.  The model must set, for every
    flow in ``flows``:

    * ``flow.demand_rate_bps`` — what the source offers to the network, and
    * ``flow.current_rate_bps`` — what is actually delivered end to end.
    """

    name = "base"

    def __init__(self) -> None:
        self.fabric = None  # type: Optional[object]

    def attach(self, fabric) -> None:
        """Bind the model to a fabric (called by :class:`FabricSimulator`)."""
        self.fabric = fabric

    def on_flow_start(self, flow: Flow, now: float) -> None:
        """Hook: a flow has just become active."""

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        """Hook: a flow has just finished or been aborted."""

    def on_flow_rerouted(self, flow: Flow, now: float, reason: str = "policy") -> None:
        """Hook: an active flow moved onto a new path.

        ``reason`` is ``"policy"`` for scheduler-driven reroutes (Hedera
        moving an elephant onto a quieter path — transparent to the
        endpoints) and ``"failure"`` when the old path lost a link, which
        endpoint transports may model as a loss/reconnect event.  The default
        is to do nothing.
        """

    def update_rates(self, flows: Sequence[Flow], now: float) -> None:
        """Assign demand and delivered rates to all active flows."""
        raise NotImplementedError
