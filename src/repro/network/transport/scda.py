"""SCDA explicit-rate transport.

Section VIII of the paper: every sender sets ``cwnd = R_u × RTT`` and every
receiver sets ``rcvw = R_d × RTT`` where ``R_u``/``R_d`` are the uplink and
downlink rates allocated by the RM/RA hierarchy; the effective sending rate is
therefore ``min(R_u, R_d, R_e2e, R_other)`` — no probing, no slow start.

The transport delegates the per-flow allocation to a :class:`RateProvider`
(implemented by :class:`repro.core.controller.ScdaController`); this module
only turns allocations into demand/delivered rates and keeps the fabric
interface uniform with the TCP baseline.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.network.flow import Flow
from repro.network.fluid import max_min_shares
from repro.network.transport.base import TransportModel


class RateProvider:
    """Protocol for anything that can hand out per-flow rate allocations."""

    def flow_allocations(self, flows: Sequence[Flow], now: float) -> Mapping[int, float]:
        """Return ``flow_id -> allocated rate`` in bits/s."""
        raise NotImplementedError

    def on_flow_start(self, flow: Flow, now: float) -> None:
        """Hook: a flow joined the network."""

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        """Hook: a flow left the network."""


class ScdaTransport(TransportModel):
    """Explicit-rate transport driven by the SCDA RM/RA allocation.

    Parameters
    ----------
    provider:
        The rate provider (normally the SCDA controller).
    enforce_capacity:
        When True (default) the delivered rates are additionally passed
        through the max-min water-filler with the allocations as caps.  The
        converged SCDA allocation is already feasible, but during the first
        control interval after a burst of arrivals the previous-round
        effective flow count can transiently oversubscribe a link — exactly
        the situation the ``βQ/d`` term of equation 2 corrects — and the
        physical network can of course never deliver more than capacity.
    solver:
        Water-filler backend for the capacity-enforcement pass
        (``"auto"``/``"python"``/``"numpy"``, see
        :func:`repro.network.fluid.max_min_shares`).  The attached fabric's
        incidence cache is passed along, so at scale this runs vectorized
        over the cached link×flow incidence.
    """

    name = "scda"

    def __init__(
        self,
        provider: RateProvider,
        enforce_capacity: bool = True,
        solver: str = "auto",
    ) -> None:
        super().__init__()
        if provider is None:
            raise ValueError("ScdaTransport requires a RateProvider")
        self.provider = provider
        self.enforce_capacity = bool(enforce_capacity)
        self.solver = solver

    def on_flow_start(self, flow: Flow, now: float) -> None:
        self.provider.on_flow_start(flow, now)

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        self.provider.on_flow_finish(flow, now)

    def update_rates(self, flows: Sequence[Flow], now: float) -> None:
        allocations = dict(self.provider.flow_allocations(flows, now))
        demands: Dict[int, float] = {}
        for flow in flows:
            allocated = float(allocations.get(flow.flow_id, 0.0))
            # R_other / application limits (equation: R_j = min(R_send,other, R_e2e, R_recv,other)).
            # Rates are aggregate across a flow's sessions, so the per-session
            # limits scale by multiplicity.
            allocated = min(allocated, flow.aggregate_app_limit_bps)
            # An explicit reservation is a floor on the allocation.
            if flow.min_rate_bps > 0.0:
                allocated = max(allocated, flow.aggregate_min_rate_bps)
            demands[flow.flow_id] = max(allocated, 0.0)

        if self.enforce_capacity:
            cache = getattr(self.fabric, "incidence", None)
            delivered = max_min_shares(
                flows, demand_caps=demands, solver=self.solver, cache=cache
            )
        else:
            delivered = demands

        for flow in flows:
            flow.demand_rate_bps = demands[flow.flow_id]
            flow.current_rate_bps = delivered[flow.flow_id]
