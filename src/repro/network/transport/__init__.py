"""Transport models: how sources decide their sending rates.

* :class:`~repro.network.transport.base.TransportModel` — the interface the
  fabric drives.
* :class:`~repro.network.transport.tcp.TcpTransport` — flow-level TCP
  (slow start + AIMD + loss backoff); the rate-control half of the RandTCP
  baseline.
* :class:`~repro.network.transport.scda.ScdaTransport` — explicit-rate
  transport: sources pace at the window ``rate × RTT`` handed to them by the
  SCDA RM/RA allocation (Section VIII of the paper).
* :class:`~repro.network.transport.ideal.IdealMaxMinTransport` — an oracle
  that instantly applies the centralised max-min allocation; used as an upper
  bound and in tests.
"""

from repro.network.transport.base import TransportModel
from repro.network.transport.tcp import TcpConfig, TcpTransport
from repro.network.transport.scda import ScdaTransport, RateProvider
from repro.network.transport.ideal import IdealMaxMinTransport

__all__ = [
    "TransportModel",
    "TcpConfig",
    "TcpTransport",
    "ScdaTransport",
    "RateProvider",
    "IdealMaxMinTransport",
]
