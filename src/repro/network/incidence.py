"""The shared link×flow incidence cache.

Every allocation-time computation — the water-filler, link utilisation,
feasibility and fairness checks, and the SCDA control round — needs the same
link→flows map, and before this module each of them re-derived it from
scratch by walking ``flow.path`` for every active flow.  :class:`IncidenceCache`
builds that map once per *flow-set epoch* and updates it incrementally on
flow arrival, departure and reroute, so a control round touching F flows over
L links costs O(path length) per membership change instead of O(L·F) per
query.

For the vectorized solver (:mod:`repro.network.fluid_fast`) the cache exposes
two structures:

* :meth:`arrays` — compact flow-major COO index arrays rebuilt per flow-set
  epoch (the PR 1 design, kept for the explicit ``solver="numpy"`` backend
  and for tests: a rebuild walks flows in insertion order, so its link order
  is bit-identical to a fresh :class:`IncidenceCache` built from the same
  flow list).
* :meth:`table` — a *persistent* :class:`IncidenceTable` that is maintained
  in place on every arrival/departure instead of being rebuilt from Python
  dicts: removed flows tombstone their rows (their coordinate pairs are
  redirected to a scratch row/slot that can never bottleneck), new flows
  append, and the arrays are compacted vectorized once tombstones outnumber
  live entries.  A churn event therefore costs O(path length), not O(nnz),
  which is what lets the delta water-filler re-solve 100k-flow problems in
  per-component time.

The cache also carries *change listeners* (see :meth:`add_listener`): the
delta water-filler subscribes to arrival/departure notifications so it knows
exactly which rows and links are dirty without diffing flow sets.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.network.flow import Flow
from repro.network.topology import Link

#: Compaction of the persistent table never triggers below this many dead
#: coordinate pairs — rewriting a small table costs more than carrying them.
_COMPACT_MIN_DEAD_PAIRS = 2048


class IncidenceArrays:
    """Structural numpy views of one incidence epoch (see ``IncidenceCache.arrays``).

    Attributes
    ----------
    flow_list:
        Flows *with a non-empty path*, in cache insertion order; the array
        index of a flow is its position in this list.
    link_list:
        Links in first-encounter order (walking flows in order, each path in
        order) — the same order in which the pure-Python solver's
        ``link_flows`` dict is populated, so per-link tie-breaking matches.
    pair_flow / pair_link:
        Flow-major COO coordinates: one entry per (flow, link) incidence.

    Link capacities are *not* cached here: ``link.capacity_bps`` can change at
    runtime (SLA bandwidth boosts mutate it in place) without bumping the
    flow-set epoch, so the solver reads capacities fresh on every call.
    """

    __slots__ = ("flow_list", "link_list", "pair_flow", "pair_link")

    def __init__(
        self,
        flow_list: List[Flow],
        link_list: List[Link],
        pair_flow,
        pair_link,
    ) -> None:
        self.flow_list = flow_list
        self.link_list = link_list
        self.pair_flow = pair_flow
        self.pair_link = pair_link

    @property
    def num_flows(self) -> int:
        return len(self.flow_list)

    @property
    def num_links(self) -> int:
        return len(self.link_list)


class IncidenceTable:
    """A persistent, incrementally-maintained link×flow coordinate table.

    Layout
    ------
    Flows occupy *rows* and links occupy *slots*; the (row, slot) incidence
    pairs live in two parallel numpy arrays ``pair_flow``/``pair_link`` in
    insertion order (flow-major: a row's pairs are contiguous, rows appear in
    ascending order).  Row 0 and slot 0 are a reserved *scratch* row/slot:

    * removing a flow redirects its pairs to ``(0, 0)`` instead of moving
      O(nnz) array elements — the scratch row solves with weight 1 and cap 0
      (frozen at rate 0 immediately), the scratch slot with capacity ``inf``
      (never a bottleneck), so tombstoned pairs are arithmetically inert;
    * a link whose last flow departs retires its slot (re-encounter later
      allocates a fresh slot), so dead slots are never referenced by live
      pairs.

    Once dead pairs outnumber live ones the table is compacted with
    vectorized masking/renumbering (:meth:`maybe_compact`), which keeps the
    arrays O(live) amortised; ``layout_version`` is bumped so solvers holding
    row/slot-aligned snapshots know to re-align.

    The table deliberately caches no capacities, weights or caps — those are
    runtime-mutable solver *inputs*, read fresh per solve (see
    :meth:`link_capacities`).
    """

    SCRATCH = 0

    def __init__(self) -> None:
        import numpy as np

        self._np = np
        #: row -> Flow (None for the scratch row and tombstoned rows).
        self.row_flows: List[Optional[Flow]] = [None]
        #: flow_id -> row (live flows only).
        self.row_of: Dict[int, int] = {}
        #: row -> [start, stop) span into the pair arrays.
        self.row_start: List[int] = [0]
        self.row_stop: List[int] = [0]
        #: slot -> Link (None for scratch and retired slots).
        self.link_slots: List[Optional[Link]] = [None]
        #: link_id -> slot (live links only).
        self.slot_of: Dict[str, int] = {}
        #: slot -> number of live pairs referencing it (retire at zero).
        self.slot_refs: List[int] = [0]
        self.pair_flow = np.zeros(64, dtype=np.intp)
        self.pair_link = np.zeros(64, dtype=np.intp)
        self.pair_count = 0
        self.dead_pairs = 0
        self.dead_rows = 0
        self.dead_slots = 0
        #: Bumped on every compaction: row/slot indices are renumbered, so any
        #: row- or slot-aligned snapshot held outside the table is invalid.
        self.layout_version = 0
        # Maintenance counters (exported as kernel perf extras).
        self.compactions = 0
        self.pairs_appended = 0
        self.pairs_killed = 0

    # -- sizes -------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.row_flows)

    @property
    def num_slots(self) -> int:
        return len(self.link_slots)

    @property
    def live_rows(self) -> int:
        return len(self.row_of)

    @property
    def live_slots(self) -> int:
        return len(self.slot_of)

    @property
    def live_pairs(self) -> int:
        return self.pair_count - self.dead_pairs

    # -- mutation ----------------------------------------------------------------
    def _ensure_pair_capacity(self, extra: int) -> None:
        np = self._np
        need = self.pair_count + extra
        cap = self.pair_flow.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("pair_flow", "pair_link"):
            old = getattr(self, name)
            grown = np.zeros(cap, dtype=np.intp)
            grown[: self.pair_count] = old[: self.pair_count]
            setattr(self, name, grown)

    def add(self, flow: Flow, path: Sequence[Link]) -> int:
        """Append a row for ``flow`` over ``path``; returns the row index."""
        row = len(self.row_flows)
        self.row_flows.append(flow)
        self.row_of[flow.flow_id] = row
        start = self.pair_count
        self._ensure_pair_capacity(len(path))
        pf, pl = self.pair_flow, self.pair_link
        for link in path:
            slot = self.slot_of.get(link.link_id)
            if slot is None:
                slot = len(self.link_slots)
                self.link_slots.append(link)
                self.slot_refs.append(0)
                self.slot_of[link.link_id] = slot
            pf[self.pair_count] = row
            pl[self.pair_count] = slot
            self.slot_refs[slot] += 1
            self.pair_count += 1
        self.row_start.append(start)
        self.row_stop.append(self.pair_count)
        self.pairs_appended += len(path)
        return row

    def remove(self, flow_id: int) -> None:
        """Tombstone the row of ``flow_id``; retire slots that lose their last pair."""
        row = self.row_of.pop(flow_id, None)
        if row is None:
            return
        self.row_flows[row] = None
        self.dead_rows += 1
        start, stop = self.row_start[row], self.row_stop[row]
        if stop > start:
            pl = self.pair_link
            for i in range(start, stop):
                slot = int(pl[i])
                if slot != self.SCRATCH:
                    self.slot_refs[slot] -= 1
                    if self.slot_refs[slot] == 0:
                        link = self.link_slots[slot]
                        if link is not None:
                            del self.slot_of[link.link_id]
                            self.link_slots[slot] = None
                            self.dead_slots += 1
            self.pair_flow[start:stop] = self.SCRATCH
            self.pair_link[start:stop] = self.SCRATCH
            killed = stop - start
            self.dead_pairs += killed
            self.pairs_killed += killed
        self.maybe_compact()

    def maybe_compact(self) -> None:
        """Compact tombstones away once they outnumber the live entries."""
        if self.dead_pairs < _COMPACT_MIN_DEAD_PAIRS:
            return
        if self.dead_pairs <= self.live_pairs and self.dead_rows <= self.live_rows:
            return
        self.compact()

    def compact(self) -> None:
        """Drop dead rows/slots/pairs and renumber, preserving relative order.

        Relative order is what makes the compacted table solve bit-identically
        to the uncompacted one: rows stay in insertion order (``pair_flow``
        remains non-decreasing), slots stay in first-encounter order, and the
        per-slot ``bincount`` reductions see the same value sequences.
        """
        np = self._np
        # Renumber rows: scratch row 0 stays at 0, live rows close ranks.
        row_map = np.zeros(len(self.row_flows), dtype=np.intp)
        new_row_flows: List[Optional[Flow]] = [None]
        for row, flow in enumerate(self.row_flows):
            if row == self.SCRATCH or flow is None:
                continue
            row_map[row] = len(new_row_flows)
            new_row_flows.append(flow)
        # Renumber slots the same way.
        slot_map = np.zeros(len(self.link_slots), dtype=np.intp)
        new_link_slots: List[Optional[Link]] = [None]
        new_slot_refs: List[int] = [0]
        for slot, link in enumerate(self.link_slots):
            if slot == self.SCRATCH or link is None:
                continue
            slot_map[slot] = len(new_link_slots)
            new_link_slots.append(link)
            new_slot_refs.append(self.slot_refs[slot])
        # Filter dead pairs (they all sit on the scratch row) and remap.
        pf = self.pair_flow[: self.pair_count]
        pl = self.pair_link[: self.pair_count]
        keep = pf != self.SCRATCH
        pf = row_map[pf[keep]]
        pl = slot_map[pl[keep]]
        # Live pairs are flow-major with rows in ascending order, a property
        # preserved by the monotone renumbering — so the new spans fall out of
        # two vectorized binary searches.
        n_rows = len(new_row_flows)
        bounds = np.arange(n_rows + 1, dtype=np.intp)
        starts = np.searchsorted(pf, bounds[:-1], side="left")
        stops = np.searchsorted(pf, bounds[:-1], side="right")
        capacity = max(64, int(pf.shape[0]))
        new_pf = np.zeros(capacity, dtype=np.intp)
        new_pl = np.zeros(capacity, dtype=np.intp)
        new_pf[: pf.shape[0]] = pf
        new_pl[: pl.shape[0]] = pl

        self.row_flows = new_row_flows
        self.row_of = {f.flow_id: r for r, f in enumerate(new_row_flows) if f is not None}
        self.row_start = starts.tolist()
        self.row_stop = stops.tolist()
        self.link_slots = new_link_slots
        self.slot_of = {
            l.link_id: s for s, l in enumerate(new_link_slots) if l is not None
        }
        self.slot_refs = new_slot_refs
        self.pair_flow = new_pf
        self.pair_link = new_pl
        self.pair_count = int(pf.shape[0])
        self.dead_pairs = 0
        self.dead_rows = 0
        self.dead_slots = 0
        self.layout_version += 1
        self.compactions += 1

    # -- solver-input gathers ------------------------------------------------------
    def link_capacities(self, capacity_scale: float = 1.0, capacity_overrides=None):
        """Effective per-slot capacities (override → scale → clamp), fresh.

        Scratch and retired slots read ``inf`` so they can never become the
        bottleneck.  Capacities are gathered per call because links mutate
        ``capacity_bps`` in place at runtime (SLA boosts, dynamics scripts).
        """
        np = self._np
        n = len(self.link_slots)
        inf = float("inf")
        caps = np.fromiter(
            (inf if l is None else l.capacity_bps for l in self.link_slots),
            np.float64,
            n,
        )
        if capacity_overrides:
            for link_id, value in capacity_overrides.items():
                slot = self.slot_of.get(link_id)
                if slot is not None:
                    caps[slot] = float(value)
        if capacity_scale != 1.0:
            # Scale only the finite (live) entries: inf sentinels must stay
            # inf even under scale 0 (0 * inf would poison them with nan).
            caps = np.where(np.isfinite(caps), caps * capacity_scale, caps)
        np.maximum(caps, 0.0, out=caps)
        return caps

    def stats(self) -> Dict[str, float]:
        """Maintenance counters for the kernel perf extras."""
        return {
            "table_rows": float(self.num_rows),
            "table_slots": float(self.num_slots),
            "table_pairs": float(self.pair_count),
            "table_dead_pairs": float(self.dead_pairs),
            "table_compactions": float(self.compactions),
            "table_pairs_appended": float(self.pairs_appended),
            "table_pairs_killed": float(self.pairs_killed),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IncidenceTable rows={self.live_rows}/{self.num_rows} "
            f"slots={self.live_slots}/{self.num_slots} "
            f"pairs={self.live_pairs}/{self.pair_count}>"
        )


class IncidenceCache:
    """Incrementally-maintained link→flows incidence for a set of active flows.

    The cache is the single owner of "which flows cross which links".  Flow
    membership changes bump :attr:`epoch`; derived structures (the link→flows
    map, the numpy index arrays) are cached against the epoch and rebuilt
    lazily when stale.  The persistent :meth:`table` is instead *maintained*
    on every membership change, and registered listeners (the delta
    water-filler) are notified with the exact change.

    Paths are snapshotted on :meth:`add_flow` so that a reroute (which
    mutates ``flow.path`` in place) cannot silently desynchronise the cache —
    the fabric removes the flow, updates the path and re-adds it.
    """

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        #: flow_id -> Flow, insertion ordered (the canonical flow order).
        self._flows: Dict[int, Flow] = {}
        #: flow_id -> snapshot (copy) of the path at add time.
        self._paths: Dict[int, List[Link]] = {}
        #: link_id -> Link, first-encounter ordered (the canonical link order).
        self._links: Dict[str, Link] = {}
        #: link_id -> {flow_id: Flow} (dict for O(1) removal, insertion ordered).
        self._link_flows: Dict[str, Dict[int, Flow]] = {}
        self.epoch = 0
        self._map_epoch = -1
        self._map_cache: Dict[str, List[Flow]] = {}
        self._arrays_epoch = -1
        self._arrays_cache: Optional[IncidenceArrays] = None
        self._table: Optional[IncidenceTable] = None
        #: ``callback(event, flow, path)`` with event ``"add"``/``"remove"``
        #: (flow+path set) or ``"clear"`` (both None).
        self._listeners: List[Callable[[str, Optional[Flow], Optional[List[Link]]], None]] = []
        #: Attachment point for a :class:`~repro.network.fluid_fast.DeltaWaterFiller`;
        #: ``solver="auto"`` dispatches to it when present.
        self.delta = None
        #: A flow list the owner (the fabric) keeps in lock-step with this
        #: cache; solvers may skip the per-call membership check when handed
        #: this exact object.  See :meth:`trust_flows`.
        self.trusted_flows = None
        for flow in flows:
            self.add_flow(flow)

    # -- membership --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow: Flow) -> bool:
        return flow.flow_id in self._flows

    @property
    def flows(self) -> List[Flow]:
        """All cached flows in insertion order."""
        return list(self._flows.values())

    @property
    def links(self) -> List[Link]:
        """All links crossed by at least one cached flow at some point."""
        return list(self._links.values())

    def link_of(self, link_id: str) -> Optional[Link]:
        return self._links.get(link_id)

    def add_listener(
        self, callback: Callable[[str, Optional[Flow], Optional[List[Link]]], None]
    ) -> None:
        """Subscribe ``callback(event, flow, path)`` to membership changes."""
        self._listeners.append(callback)

    def trust_flows(self, flows: List[Flow]) -> None:
        """Declare ``flows`` as a list kept in lock-step with this cache.

        The fabric updates its active-flow list and this cache together under
        every mutation, so a solver handed that exact list object does not
        need an O(F) membership re-check per call.
        """
        self.trusted_flows = flows

    def add_flow(self, flow: Flow) -> None:
        """Register ``flow`` (its current path is snapshotted)."""
        if flow.flow_id in self._flows:
            return
        self._flows[flow.flow_id] = flow
        self.trusted_flows = None
        path = list(flow.path)
        self._paths[flow.flow_id] = path
        for link in path:
            bucket = self._link_flows.get(link.link_id)
            if bucket is None:
                self._links[link.link_id] = link
                bucket = self._link_flows[link.link_id] = {}
            bucket[flow.flow_id] = flow
        self.epoch += 1
        if self._table is not None:
            self._table.add(flow, path)
        for listener in self._listeners:
            listener("add", flow, path)

    def remove_flow(self, flow: Flow) -> None:
        """Forget ``flow`` (using the path snapshotted at add time)."""
        if flow.flow_id not in self._flows:
            return
        del self._flows[flow.flow_id]
        self.trusted_flows = None
        path = self._paths.pop(flow.flow_id, [])
        for link in path:
            bucket = self._link_flows.get(link.link_id)
            if bucket is not None:
                bucket.pop(flow.flow_id, None)
                if not bucket:
                    del self._link_flows[link.link_id]
                    del self._links[link.link_id]
        self.epoch += 1
        if self._table is not None:
            self._table.remove(flow.flow_id)
        for listener in self._listeners:
            listener("remove", flow, path)

    def clear(self) -> None:
        self._flows.clear()
        self._paths.clear()
        self._links.clear()
        self._link_flows.clear()
        self.epoch += 1
        self._table = None
        self.trusted_flows = None
        for listener in self._listeners:
            listener("clear", None, None)

    def matches(self, flows: Sequence[Flow]) -> bool:
        """True when ``flows`` is exactly the cached flow set (same paths).

        O(nnz) identity comparisons — cheap insurance (well under the cost of
        one solve) against a caller handing the solver a stale cache, e.g. a
        flow list filtered or re-routed outside the fabric's notifications.
        Paths are compared link by link, so even an equal-length ECMP reroute
        done behind the cache's back is detected.
        """
        if len(flows) != len(self._flows):
            return False
        paths = self._paths
        for flow in flows:
            snap = paths.get(flow.flow_id)
            # Link defines no __eq__, so list comparison is C-speed identity.
            if snap is None or snap != flow.path:
                return False
        return True

    def covers_ids(self, flows: Sequence[Flow]) -> bool:
        """True when ``flows`` carries exactly the cached flow ids.

        The O(F) membership half of :meth:`matches` without the O(nnz) path
        walk — the check the delta water-filler runs per solve (paths are
        trusted to the cache's own snapshots; the fabric never mutates a path
        without re-adding the flow).
        """
        if len(flows) != len(self._flows):
            return False
        cached = self._flows
        for flow in flows:
            if flow.flow_id not in cached:
                return False
        return True

    # -- derived structures --------------------------------------------------------
    def link_flows_map(self) -> Dict[str, List[Flow]]:
        """``link_id -> [flows crossing it]`` for the current epoch (cached)."""
        if self._map_epoch != self.epoch:
            self._map_cache = {
                link_id: list(bucket.values())
                for link_id, bucket in self._link_flows.items()
            }
            self._map_epoch = self.epoch
        return self._map_cache

    def flows_of_link(self, link_id: str) -> Sequence[Flow]:
        """The flows crossing ``link_id`` without materialising the full map."""
        bucket = self._link_flows.get(link_id)
        return tuple(bucket.values()) if bucket else ()

    def arrays(self) -> IncidenceArrays:
        """CSR-style numpy index arrays for the current epoch (cached)."""
        if self._arrays_epoch != self.epoch or self._arrays_cache is None:
            self._arrays_cache = self._build_arrays()
            self._arrays_epoch = self.epoch
        return self._arrays_cache

    def table(self) -> IncidenceTable:
        """The persistent maintained table (built once, updated in place)."""
        if self._table is None:
            table = IncidenceTable()
            for flow_id, flow in self._flows.items():
                table.add(flow, self._paths[flow_id])
            self._table = table
        return self._table

    def _build_arrays(self) -> IncidenceArrays:
        import numpy as np

        flow_list = [f for f in self._flows.values() if self._paths.get(f.flow_id)]
        link_index: Dict[str, int] = {}
        link_list: List[Link] = []
        pair_flow: List[int] = []
        pair_link: List[int] = []
        for fi, flow in enumerate(flow_list):
            for link in self._paths[flow.flow_id]:
                li = link_index.get(link.link_id)
                if li is None:
                    li = link_index[link.link_id] = len(link_list)
                    link_list.append(link)
                pair_flow.append(fi)
                pair_link.append(li)
        return IncidenceArrays(
            flow_list=flow_list,
            link_list=link_list,
            pair_flow=np.asarray(pair_flow, dtype=np.intp),
            pair_link=np.asarray(pair_link, dtype=np.intp),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IncidenceCache flows={len(self._flows)} links={len(self._links)} "
            f"epoch={self.epoch}>"
        )
