"""The shared link×flow incidence cache.

Every allocation-time computation — the water-filler, link utilisation,
feasibility and fairness checks, and the SCDA control round — needs the same
link→flows map, and before this module each of them re-derived it from
scratch by walking ``flow.path`` for every active flow.  :class:`IncidenceCache`
builds that map once per *flow-set epoch* and updates it incrementally on
flow arrival, departure and reroute, so a control round touching F flows over
L links costs O(path length) per membership change instead of O(L·F) per
query.

For the vectorized solver (:mod:`repro.network.fluid_fast`) the cache also
materialises CSR-style index arrays (flow-major ``(flow, link)`` coordinate
pairs plus per-link/per-flow lookup tables); the arrays are rebuilt lazily
and only when the epoch has moved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.network.flow import Flow
from repro.network.topology import Link


class IncidenceArrays:
    """Structural numpy views of one incidence epoch (see ``IncidenceCache.arrays``).

    Attributes
    ----------
    flow_list:
        Flows *with a non-empty path*, in cache insertion order; the array
        index of a flow is its position in this list.
    link_list:
        Links in first-encounter order (walking flows in order, each path in
        order) — the same order in which the pure-Python solver's
        ``link_flows`` dict is populated, so per-link tie-breaking matches.
    pair_flow / pair_link:
        Flow-major COO coordinates: one entry per (flow, link) incidence.

    Link capacities are *not* cached here: ``link.capacity_bps`` can change at
    runtime (SLA bandwidth boosts mutate it in place) without bumping the
    flow-set epoch, so the solver reads capacities fresh on every call.
    """

    __slots__ = ("flow_list", "link_list", "pair_flow", "pair_link")

    def __init__(
        self,
        flow_list: List[Flow],
        link_list: List[Link],
        pair_flow,
        pair_link,
    ) -> None:
        self.flow_list = flow_list
        self.link_list = link_list
        self.pair_flow = pair_flow
        self.pair_link = pair_link

    @property
    def num_flows(self) -> int:
        return len(self.flow_list)

    @property
    def num_links(self) -> int:
        return len(self.link_list)


class IncidenceCache:
    """Incrementally-maintained link→flows incidence for a set of active flows.

    The cache is the single owner of "which flows cross which links".  Flow
    membership changes bump :attr:`epoch`; derived structures (the link→flows
    map, the numpy index arrays) are cached against the epoch and rebuilt
    lazily when stale.

    Paths are snapshotted on :meth:`add_flow` so that a reroute (which
    mutates ``flow.path`` in place) cannot silently desynchronise the cache —
    the fabric removes the flow, updates the path and re-adds it.
    """

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        #: flow_id -> Flow, insertion ordered (the canonical flow order).
        self._flows: Dict[int, Flow] = {}
        #: flow_id -> snapshot (copy) of the path at add time.
        self._paths: Dict[int, List[Link]] = {}
        #: link_id -> Link, first-encounter ordered (the canonical link order).
        self._links: Dict[str, Link] = {}
        #: link_id -> {flow_id: Flow} (dict for O(1) removal, insertion ordered).
        self._link_flows: Dict[str, Dict[int, Flow]] = {}
        self.epoch = 0
        self._map_epoch = -1
        self._map_cache: Dict[str, List[Flow]] = {}
        self._arrays_epoch = -1
        self._arrays_cache: Optional[IncidenceArrays] = None
        for flow in flows:
            self.add_flow(flow)

    # -- membership --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow: Flow) -> bool:
        return flow.flow_id in self._flows

    @property
    def flows(self) -> List[Flow]:
        """All cached flows in insertion order."""
        return list(self._flows.values())

    @property
    def links(self) -> List[Link]:
        """All links crossed by at least one cached flow at some point."""
        return list(self._links.values())

    def link_of(self, link_id: str) -> Optional[Link]:
        return self._links.get(link_id)

    def add_flow(self, flow: Flow) -> None:
        """Register ``flow`` (its current path is snapshotted)."""
        if flow.flow_id in self._flows:
            return
        self._flows[flow.flow_id] = flow
        path = list(flow.path)
        self._paths[flow.flow_id] = path
        for link in path:
            bucket = self._link_flows.get(link.link_id)
            if bucket is None:
                self._links[link.link_id] = link
                bucket = self._link_flows[link.link_id] = {}
            bucket[flow.flow_id] = flow
        self.epoch += 1

    def remove_flow(self, flow: Flow) -> None:
        """Forget ``flow`` (using the path snapshotted at add time)."""
        if flow.flow_id not in self._flows:
            return
        del self._flows[flow.flow_id]
        path = self._paths.pop(flow.flow_id, [])
        for link in path:
            bucket = self._link_flows.get(link.link_id)
            if bucket is not None:
                bucket.pop(flow.flow_id, None)
                if not bucket:
                    del self._link_flows[link.link_id]
                    del self._links[link.link_id]
        self.epoch += 1

    def clear(self) -> None:
        self._flows.clear()
        self._paths.clear()
        self._links.clear()
        self._link_flows.clear()
        self.epoch += 1

    def matches(self, flows: Sequence[Flow]) -> bool:
        """True when ``flows`` is exactly the cached flow set (same paths).

        O(nnz) identity comparisons — cheap insurance (well under the cost of
        one solve) against a caller handing the solver a stale cache, e.g. a
        flow list filtered or re-routed outside the fabric's notifications.
        Paths are compared link by link, so even an equal-length ECMP reroute
        done behind the cache's back is detected.
        """
        if len(flows) != len(self._flows):
            return False
        paths = self._paths
        for flow in flows:
            snap = paths.get(flow.flow_id)
            # Link defines no __eq__, so list comparison is C-speed identity.
            if snap is None or snap != flow.path:
                return False
        return True

    # -- derived structures --------------------------------------------------------
    def link_flows_map(self) -> Dict[str, List[Flow]]:
        """``link_id -> [flows crossing it]`` for the current epoch (cached)."""
        if self._map_epoch != self.epoch:
            self._map_cache = {
                link_id: list(bucket.values())
                for link_id, bucket in self._link_flows.items()
            }
            self._map_epoch = self.epoch
        return self._map_cache

    def arrays(self) -> IncidenceArrays:
        """CSR-style numpy index arrays for the current epoch (cached)."""
        if self._arrays_epoch != self.epoch or self._arrays_cache is None:
            self._arrays_cache = self._build_arrays()
            self._arrays_epoch = self.epoch
        return self._arrays_cache

    def _build_arrays(self) -> IncidenceArrays:
        import numpy as np

        flow_list = [f for f in self._flows.values() if self._paths.get(f.flow_id)]
        link_index: Dict[str, int] = {}
        link_list: List[Link] = []
        pair_flow: List[int] = []
        pair_link: List[int] = []
        for fi, flow in enumerate(flow_list):
            for link in self._paths[flow.flow_id]:
                li = link_index.get(link.link_id)
                if li is None:
                    li = link_index[link.link_id] = len(link_list)
                    link_list.append(link)
                pair_flow.append(fi)
                pair_link.append(li)
        return IncidenceArrays(
            flow_list=flow_list,
            link_list=link_list,
            pair_flow=np.asarray(pair_flow, dtype=np.intp),
            pair_link=np.asarray(pair_link, dtype=np.intp),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IncidenceCache flows={len(self._flows)} links={len(self._links)} "
            f"epoch={self.epoch}>"
        )
