"""Two-tier leaf-spine topology.

A common modern datacenter fabric; included as another instance of the
"general network topologies" of Section IX.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from repro.network.topology import Topology

GBPS = 1e9


@dataclass
class LeafSpineConfig:
    """Parameters of the leaf-spine fabric (see :func:`build_leaf_spine`)."""

    num_spines: int = 2
    num_leaves: int = 4
    hosts_per_leaf: int = 4
    host_link_bps: float = 1.0 * GBPS
    fabric_link_bps: float = 4.0 * GBPS
    link_delay_s: float = 0.001
    num_clients: int = 2
    client_delay_s: float = 0.050
    buffer_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if min(self.num_spines, self.num_leaves, self.hosts_per_leaf) < 1:
            raise ValueError("leaf-spine dimensions must be >= 1")
        if self.num_clients < 1:
            raise ValueError("need at least one client")

    @property
    def num_hosts(self) -> int:
        """Total number of block-server hosts."""
        return self.num_leaves * self.hosts_per_leaf


def build_leaf_spine_topology(config: Optional[LeafSpineConfig] = None) -> Topology:
    """Config-object entry point used by the topology registry.

    Config fields mirror :func:`build_leaf_spine`'s parameters one-to-one.
    """
    return build_leaf_spine(**asdict(config or LeafSpineConfig()))


def build_leaf_spine(
    num_spines: int = 2,
    num_leaves: int = 4,
    hosts_per_leaf: int = 4,
    host_link_bps: float = 1.0 * GBPS,
    fabric_link_bps: float = 4.0 * GBPS,
    link_delay_s: float = 0.001,
    num_clients: int = 2,
    client_delay_s: float = 0.050,
    buffer_bytes: Optional[float] = None,
) -> Topology:
    """Build a leaf-spine fabric: every leaf connects to every spine.

    Levels: hosts 0, leaves 1, spines 2.
    """
    if num_spines < 1 or num_leaves < 1 or hosts_per_leaf < 1:
        raise ValueError("leaf-spine dimensions must be >= 1")
    topo = Topology(name="leaf-spine")

    spines = [topo.add_switch(f"spine-{s}", level=2) for s in range(num_spines)]
    for l in range(num_leaves):
        leaf = topo.add_switch(f"leaf-{l}", level=1, rack=str(l))
        for spine in spines:
            topo.add_duplex_link(leaf, spine, fabric_link_bps, link_delay_s, buffer_bytes)
        for h in range(hosts_per_leaf):
            host = topo.add_host(f"bs-{l}-{h}", level=0, rack=str(l))
            topo.add_duplex_link(host, leaf, host_link_bps, link_delay_s, buffer_bytes)

    for c in range(num_clients):
        client = topo.add_client(f"ucl-{c}")
        topo.add_duplex_link(
            client, spines[c % num_spines], host_link_bps, client_delay_s, buffer_bytes
        )

    topo.validate()
    return topo
