"""Routing: shortest paths, ECMP, and widest-path (max/min) route selection.

The paper's Section IX describes two routing modes:

* on the tree topology the path between two nodes is unique (up to the lowest
  common ancestor and back down);
* on general topologies SCDA computes link weights from the allocated rates
  and picks the *widest* shortest path (maximise the minimum link rate along
  the path), while RandTCP-style baselines hash flows onto one of the
  equal-cost shortest paths (ECMP).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.topology import Link, Node, Topology


class NoPathError(Exception):
    """Raised when no path exists between two nodes."""


Path = List[Link]


def _links_to_nodes(path: Path) -> List[str]:
    if not path:
        return []
    ids = [path[0].src.node_id]
    ids.extend(link.dst.node_id for link in path)
    return ids


class Router:
    """Hop-count shortest-path routing with deterministic tie-breaking.

    Paths are cached per (src, dst) pair.  Topologies are static for most of
    an experiment, but the dynamics layer can fail and restore links at
    runtime; the fabric calls :meth:`invalidate_routes` after every topology
    mutation, and path search skips links whose ``up`` flag is cleared.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._cache: Dict[Tuple[str, str], Path] = {}

    def invalidate_routes(self) -> None:
        """Drop every cached path (topology mutated: link failed/restored)."""
        self._cache.clear()

    def path(self, src: Node, dst: Node) -> Path:
        """Return the list of directed links from ``src`` to ``dst``.

        Stateless and cached: safe for estimation helpers (``base_rtt``,
        ``hop_count``) to call any number of times.
        """
        if src.node_id == dst.node_id:
            return []
        key = (src.node_id, dst.node_id)
        if key not in self._cache:
            self._cache[key] = self._bfs(src, dst)
        return list(self._cache[key])

    def path_for_new_flow(self, src: Node, dst: Node) -> Path:
        """The path to assign to a *new* flow.

        The fabric calls this exactly once per flow start.  Routers that
        spread flows (hashed ECMP, VLB) override it with their stateful or
        randomized choice, keeping :meth:`path` deterministic so estimation
        callers do not perturb routing decisions.
        """
        return self.path(src, dst)

    def path_nodes(self, src: Node, dst: Node) -> List[str]:
        """Node ids along the path, including both endpoints."""
        return _links_to_nodes(self.path(src, dst)) or [src.node_id]

    def hop_count(self, src: Node, dst: Node) -> int:
        """Number of links between ``src`` and ``dst``."""
        return len(self.path(src, dst))

    def base_rtt(self, src: Node, dst: Node) -> float:
        """Round-trip propagation delay between ``src`` and ``dst`` (seconds)."""
        forward = sum(l.delay_s for l in self.path(src, dst))
        backward = sum(l.delay_s for l in self.path(dst, src))
        return forward + backward

    def _bfs(self, src: Node, dst: Node) -> Path:
        # Deterministic BFS: explore links in insertion order.
        visited = {src.node_id}
        queue = deque([(src, [])])  # type: ignore[var-annotated]
        while queue:
            node, path = queue.popleft()
            for link in self.topology.out_links(node):
                if not link.up:
                    continue
                nxt = link.dst
                if nxt.node_id in visited:
                    continue
                new_path = path + [link]
                if nxt.node_id == dst.node_id:
                    return new_path
                visited.add(nxt.node_id)
                queue.append((nxt, new_path))
        raise NoPathError(f"no path from {src.node_id} to {dst.node_id}")


class EcmpRouter(Router):
    """Equal-cost multi-path routing: hash flows onto one shortest path.

    This is the random path selection used by VL2/Hedera-class designs (and
    called out in the paper's related-work section as the source of persistent
    congestion under elephant flows).
    """

    def __init__(self, topology: Topology, max_paths: int = 8) -> None:
        super().__init__(topology)
        if max_paths < 1:
            raise ValueError("max_paths must be >= 1")
        self.max_paths = max_paths
        self._multi_cache: Dict[Tuple[str, str], List[Path]] = {}

    def invalidate_routes(self) -> None:
        super().invalidate_routes()
        self._multi_cache.clear()

    def equal_cost_paths(self, src: Node, dst: Node) -> List[Path]:
        """All (up to ``max_paths``) minimum-hop paths between two nodes."""
        if src.node_id == dst.node_id:
            return [[]]
        key = (src.node_id, dst.node_id)
        if key not in self._multi_cache:
            self._multi_cache[key] = self._all_shortest(src, dst)
        return [list(p) for p in self._multi_cache[key]]

    def path_for_flow(self, src: Node, dst: Node, flow_key: int) -> Path:
        """Pick one of the equal-cost paths by hashing ``flow_key``."""
        paths = self.equal_cost_paths(src, dst)
        return paths[flow_key % len(paths)]

    def _all_shortest(self, src: Node, dst: Node) -> List[Path]:
        shortest_len = len(self._bfs(src, dst))
        results: List[Path] = []

        def dfs(node: Node, path: Path, visited: set) -> None:
            if len(results) >= self.max_paths:
                return
            if len(path) > shortest_len:
                return
            if node.node_id == dst.node_id:
                if len(path) == shortest_len:
                    results.append(list(path))
                return
            for link in self.topology.out_links(node):
                if not link.up:
                    continue
                nxt = link.dst
                if nxt.node_id in visited:
                    continue
                visited.add(nxt.node_id)
                path.append(link)
                dfs(nxt, path, visited)
                path.pop()
                visited.remove(nxt.node_id)

        dfs(src, [], {src.node_id})
        return results or [self._bfs(src, dst)]


class HashingEcmpRouter(EcmpRouter):
    """ECMP that actually spreads new flows over the equal-cost paths.

    :class:`EcmpRouter` exposes :meth:`~EcmpRouter.path_for_flow` for callers
    that supply their own flow key, but its inherited :meth:`~Router.path`
    always returns the single BFS-shortest path.  This subclass overrides
    :meth:`~Router.path_for_new_flow` to hash *consecutive flows of the same
    (src, dst) pair* onto successive equal-cost paths, giving the
    deterministic per-flow spreading of a VL2/Hedera-style baseline.
    ``path()`` itself stays stateless, so RTT/hop estimation never skews
    which path the next flow receives.
    """

    def __init__(self, topology: Topology, max_paths: int = 8) -> None:
        super().__init__(topology, max_paths)
        self._flow_counters: Dict[Tuple[str, str], int] = {}

    def path_for_new_flow(self, src: Node, dst: Node) -> Path:
        if src.node_id == dst.node_id:
            return []
        key = (src.node_id, dst.node_id)
        n = self._flow_counters.get(key, 0)
        self._flow_counters[key] = n + 1
        return self.path_for_flow(src, dst, n)


class WidestPathRouter(Router):
    """Max/min ("widest") path selection over dynamic link rates.

    Implements the route computation of Section IX: link weights are the
    current SCDA rate allocations ``R_{d,u}(t)``; the chosen path maximises
    the minimum link rate, with hop count as a tie-break.  The weight source
    is a callable so the SCDA controller can plug in live allocations.
    """

    def __init__(
        self,
        topology: Topology,
        rate_of_link: Optional[Callable[[Link], float]] = None,
    ) -> None:
        super().__init__(topology)
        self.rate_of_link = rate_of_link or (lambda link: link.capacity_bps)

    def widest_path(self, src: Node, dst: Node) -> Tuple[Path, float]:
        """Return ``(path, bottleneck_rate)`` maximising the bottleneck rate."""
        if src.node_id == dst.node_id:
            return [], float("inf")
        # Modified Dijkstra: maximise the minimum edge weight along the path.
        best_bottleneck: Dict[str, float] = {src.node_id: float("inf")}
        best_hops: Dict[str, int] = {src.node_id: 0}
        parent: Dict[str, Tuple[str, Link]] = {}
        # Max-heap via negative bottleneck; hops break ties.
        heap: List[Tuple[float, int, str]] = [(-float("inf"), 0, src.node_id)]
        visited: set = set()
        while heap:
            neg_bn, hops, node_id = heapq.heappop(heap)
            if node_id in visited:
                continue
            visited.add(node_id)
            if node_id == dst.node_id:
                break
            node = self.topology.node(node_id)
            for link in self.topology.out_links(node):
                if not link.up:
                    continue
                rate = max(0.0, float(self.rate_of_link(link)))
                cand = min(-neg_bn, rate)
                nxt = link.dst.node_id
                if cand > best_bottleneck.get(nxt, -1.0) or (
                    cand == best_bottleneck.get(nxt, -1.0)
                    and hops + 1 < best_hops.get(nxt, 1 << 30)
                ):
                    best_bottleneck[nxt] = cand
                    best_hops[nxt] = hops + 1
                    parent[nxt] = (node_id, link)
                    heapq.heappush(heap, (-cand, hops + 1, nxt))
        if dst.node_id not in parent and dst.node_id != src.node_id:
            raise NoPathError(f"no path from {src.node_id} to {dst.node_id}")
        # Reconstruct.
        path: Path = []
        cur = dst.node_id
        while cur != src.node_id:
            prev, link = parent[cur]
            path.append(link)
            cur = prev
        path.reverse()
        return path, best_bottleneck[dst.node_id]

    def path(self, src: Node, dst: Node) -> Path:
        """Widest path (overrides the hop-count shortest path)."""
        return self.widest_path(src, dst)[0]
