"""Scenario configuration for the evaluation experiments.

Every figure of Section X is a (topology, workload, duration) triple; the
named constructors below encode the paper's parameters:

* video traces, with and without control flows — ``X = 500 Mb/s``, ``K = 3``,
  20 block servers (Section X-A1),
* general datacenter traces — ``K = 1`` and ``K = 3`` (Section X-A2),
* Pareto sizes / Poisson arrivals — ``X = 200 Mb/s``, ``K = 3``, mean size
  500 KB, shape 1.6, 200 flows/s (Section X-B).

The default durations are shorter than the paper's 100 s so the whole figure
suite runs in minutes on a laptop; every constructor accepts overrides, and
EXPERIMENTS.md records the settings actually used.

``ScenarioConfig`` is now a typed convenience shim over the declarative,
registry-driven :class:`~repro.experiments.spec.ScenarioSpec` (see
``docs/SCENARIOS.md``): the runner converts every config through
:meth:`ScenarioConfig.to_spec`, so both APIs produce identical results.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.core.rate_metric import ScdaParams
from repro.experiments.spec import ScenarioSpec
from repro.network.tree import TreeTopologyConfig
from repro.workloads.datacenter_traces import DatacenterTraceConfig
from repro.workloads.pareto_poisson import ParetoPoissonConfig
from repro.workloads.video_traces import VideoTraceConfig

MBPS = 1e6
KB = 1024.0
MB = 1024.0 * 1024.0


class WorkloadKind(enum.Enum):
    """Which generator supplies the flow requests."""

    VIDEO = "video"
    DATACENTER = "datacenter"
    PARETO_POISSON = "pareto-poisson"


@dataclass
class ScenarioConfig:
    """A complete experiment scenario."""

    name: str = "scenario"
    seed: int = 1
    sim_time_s: float = 30.0
    #: extra time after the last arrival to let in-flight flows finish
    drain_time_s: float = 30.0
    topology: TreeTopologyConfig = field(default_factory=TreeTopologyConfig)
    workload_kind: WorkloadKind = WorkloadKind.PARETO_POISSON
    video: VideoTraceConfig = field(default_factory=VideoTraceConfig)
    datacenter: DatacenterTraceConfig = field(default_factory=DatacenterTraceConfig)
    pareto: ParetoPoissonConfig = field(default_factory=ParetoPoissonConfig)
    scda_params: ScdaParams = field(default_factory=ScdaParams)
    control_interval_s: float = 0.010
    setup_rtts: float = 1.5
    replication_enabled: bool = True
    throughput_sample_interval_s: float = 1.0
    #: scale-down threshold R_scale used by the passive-content policy
    scale_down_threshold_bps: float = 50e6

    def __post_init__(self) -> None:
        if self.sim_time_s <= 0:
            raise ValueError("sim_time_s must be positive")
        if self.drain_time_s < 0:
            raise ValueError("drain_time_s must be non-negative")
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if self.throughput_sample_interval_s <= 0:
            raise ValueError("throughput_sample_interval_s must be positive")

    # -- derived -----------------------------------------------------------------------------
    @property
    def total_time_s(self) -> float:
        """Simulated horizon including the drain period."""
        return self.sim_time_s + self.drain_time_s

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def to_spec(self) -> ScenarioSpec:
        """The equivalent declarative :class:`~repro.experiments.spec.ScenarioSpec`.

        ``ScenarioConfig`` is kept as a typed convenience shim; the runner
        normalises every scenario through this conversion, so the config and
        the spec produce bit-identical workloads, topologies and results.
        """
        from repro.registry import WORKLOADS

        kind = (
            self.workload_kind.value
            if isinstance(self.workload_kind, WorkloadKind)
            else str(self.workload_kind)
        )
        if kind in WORKLOADS:
            # Resolve aliases ("pareto" -> "pareto-poisson") so the workload
            # params below are looked up under the canonical key; unknown
            # kinds pass through and fail at the registry with the full list.
            kind = WORKLOADS.get(kind).name
        workload_configs = {
            WorkloadKind.VIDEO.value: self.video,
            WorkloadKind.DATACENTER.value: self.datacenter,
            WorkloadKind.PARETO_POISSON.value: self.pareto,
        }
        workload_config = workload_configs.get(kind)
        scda = asdict(self.scda_params)
        # The runner has always taken τ from the scenario, not from ScdaParams.
        scda.pop("control_interval_s", None)
        return ScenarioSpec(
            name=self.name,
            seed=self.seed,
            sim_time_s=self.sim_time_s,
            drain_time_s=self.drain_time_s,
            topology="tree",
            topology_params=asdict(self.topology),
            workload=kind,
            workload_params=asdict(workload_config) if workload_config is not None else {},
            scda_params=scda,
            control_interval_s=self.control_interval_s,
            setup_rtts=self.setup_rtts,
            replication_enabled=self.replication_enabled,
            throughput_sample_interval_s=self.throughput_sample_interval_s,
            scale_down_threshold_bps=self.scale_down_threshold_bps,
        )

    # -- named scenarios (the paper's experiments) -----------------------------------------------
    @classmethod
    def video_with_control(
        cls, sim_time: float = 30.0, seed: int = 1, **overrides
    ) -> "ScenarioConfig":
        """Section X-A1, Figures 7-9: video traces including control flows."""
        topology = TreeTopologyConfig(
            base_bandwidth_bps=500 * MBPS,
            bandwidth_factor=3.0,
            num_agg=2,
            racks_per_agg=2,
            hosts_per_rack=5,            # 20 block servers, as scaled in the paper
            num_clients=8,
            client_bandwidth_bps=1500 * MBPS,
        )
        video = VideoTraceConfig(duration_s=sim_time, include_control_flows=True, num_clients=8)
        cfg = cls(
            name="video-with-control",
            seed=seed,
            sim_time_s=sim_time,
            topology=topology,
            workload_kind=WorkloadKind.VIDEO,
            video=video,
        )
        return cfg.with_overrides(**overrides) if overrides else cfg

    @classmethod
    def video_without_control(
        cls, sim_time: float = 30.0, seed: int = 1, **overrides
    ) -> "ScenarioConfig":
        """Section X-A1, Figures 10-12: video traces, video flows only."""
        cfg = cls.video_with_control(sim_time=sim_time, seed=seed)
        cfg = cfg.with_overrides(
            name="video-without-control",
            video=replace(cfg.video, include_control_flows=False),
        )
        return cfg.with_overrides(**overrides) if overrides else cfg

    @classmethod
    def datacenter(
        cls, bandwidth_factor: float = 1.0, sim_time: float = 30.0, seed: int = 1, **overrides
    ) -> "ScenarioConfig":
        """Section X-A2, Figures 13-16: general datacenter traces (K = 1 or 3)."""
        topology = TreeTopologyConfig(
            base_bandwidth_bps=500 * MBPS,
            bandwidth_factor=bandwidth_factor,
            num_agg=2,
            racks_per_agg=2,
            hosts_per_rack=5,
            num_clients=8,
            client_bandwidth_bps=1500 * MBPS,
        )
        dc = DatacenterTraceConfig(duration_s=sim_time, num_clients=8)
        cfg = cls(
            name=f"datacenter-k{bandwidth_factor:g}",
            seed=seed,
            sim_time_s=sim_time,
            topology=topology,
            workload_kind=WorkloadKind.DATACENTER,
            datacenter=dc,
        )
        return cfg.with_overrides(**overrides) if overrides else cfg

    @classmethod
    def pareto_poisson(
        cls,
        sim_time: float = 20.0,
        seed: int = 1,
        arrival_rate_per_s: float = 60.0,
        **overrides,
    ) -> "ScenarioConfig":
        """Section X-B, Figures 17-18: Pareto sizes, Poisson arrivals.

        The paper uses 200 flows/s over 100 s; the default here scales the
        rate down so the scenario finishes quickly — pass
        ``arrival_rate_per_s=200`` and ``sim_time=100`` for the full-size run.
        """
        # Shared constants: the declarative twin (ScenarioSpec.pareto_poisson)
        # builds from the same dicts, so the factories cannot drift apart.
        from repro.experiments.spec import (
            PARETO_POISSON_TREE_PARAMS,
            PARETO_POISSON_WORKLOAD_PARAMS,
        )

        topology = TreeTopologyConfig(**PARETO_POISSON_TREE_PARAMS)
        pareto = ParetoPoissonConfig(
            duration_s=sim_time,
            arrival_rate_per_s=arrival_rate_per_s,
            **PARETO_POISSON_WORKLOAD_PARAMS,
        )
        cfg = cls(
            name="pareto-poisson",
            seed=seed,
            sim_time_s=sim_time,
            topology=topology,
            workload_kind=WorkloadKind.PARETO_POISSON,
            pareto=pareto,
        )
        return cfg.with_overrides(**overrides) if overrides else cfg
