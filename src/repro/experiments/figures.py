"""Per-figure generators: regenerate the data series of Figures 7-18.

Each ``figureNN`` function runs (or reuses) the SCDA-vs-RandTCP comparison on
the corresponding scenario and returns a :class:`FigureData` holding exactly
the series the paper plots: throughput-over-time curves, FCT CDFs, or
AFCT-versus-file-size curves, one series per scheme.

The functions accept a ``ScenarioConfig`` so tests and benchmarks can run
scaled-down versions; the defaults match the scenario constructors in
:mod:`repro.experiments.config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison
from repro.metrics.comparison import ComparisonResult
from repro.metrics.fct import size_bin_edges

MB = 1024.0 * 1024.0
KB = 1024.0


@dataclass
class FigureData:
    """The data behind one figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    #: series name -> (x values, y values)
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    #: headline comparison numbers for EXPERIMENTS.md
    summary: Dict[str, float] = field(default_factory=dict)
    comparison: Optional[ComparisonResult] = None

    def add_series(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        """Attach one named curve."""
        if len(x) != len(y):
            raise ValueError(f"series {name!r}: x and y lengths differ ({len(x)} vs {len(y)})")
        self.series[name] = (np.asarray(x, dtype=float), np.asarray(y, dtype=float))

    def as_table(self) -> str:
        """A plain-text rendering of the series (rows = x, one column per series)."""
        if not self.series:
            return f"{self.figure_id}: (no data)"
        names = list(self.series)
        lines = [f"# {self.figure_id}: {self.title}", "\t".join([self.x_label] + names)]
        reference_x = self.series[names[0]][0]
        for i, x in enumerate(reference_x):
            row = [f"{x:.4g}"]
            for name in names:
                xs, ys = self.series[name]
                row.append(f"{ys[i]:.4g}" if i < len(ys) else "")
            lines.append("\t".join(row))
        return "\n".join(lines)


# ------------------------------------------------------------------------------------------
# Builders shared by several figures
# ------------------------------------------------------------------------------------------
def _throughput_figure(
    figure_id: str, title: str, comparison: ComparisonResult
) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label="Simulation time (sec)",
        y_label="Avg. Inst. Thpt (KB/sec)",
        comparison=comparison,
    )
    for result in (comparison.baseline, comparison.candidate):
        times, thpt = result.throughput.series()
        fig.add_series(result.scheme, times, thpt)
    fig.summary = comparison.summary()
    return fig


def _fct_cdf_figure(figure_id: str, title: str, comparison: ComparisonResult) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label="FCT (sec)",
        y_label="FCT CDF",
        comparison=comparison,
    )
    for result in (comparison.baseline, comparison.candidate):
        x, y = result.fct_cdf()
        fig.add_series(result.scheme, x, y)
    fig.summary = comparison.summary()
    return fig


def _afct_figure(
    figure_id: str,
    title: str,
    comparison: ComparisonResult,
    max_size_bytes: float,
    num_bins: int,
    x_unit_bytes: float,
    x_label: str,
    min_size_bytes: float = 1.0,
) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="AFCT (sec)",
        comparison=comparison,
    )
    edges = size_bin_edges(min_size_bytes, max_size_bytes, num_bins)
    for result in (comparison.baseline, comparison.candidate):
        centers, afct, _counts = result.afct_curve(edges)
        mask = np.isfinite(afct)
        fig.add_series(result.scheme, centers[mask] / x_unit_bytes, afct[mask])
    fig.summary = comparison.summary()
    return fig


def _ensure_comparison(
    config: Optional[ScenarioConfig],
    default_config: Callable[[], ScenarioConfig],
    comparison: Optional[ComparisonResult],
) -> ComparisonResult:
    if comparison is not None:
        return comparison
    cfg = config if config is not None else default_config()
    return run_comparison(cfg)


# ------------------------------------------------------------------------------------------
# Figures 7-9: video traces with control flows
# ------------------------------------------------------------------------------------------
def figure07(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """Average instantaneous throughput, video traces *with* control flows."""
    comparison = _ensure_comparison(config, ScenarioConfig.video_with_control, comparison)
    return _throughput_figure(
        "fig07", "RandTCP vs SCDA instantaneous average throughput (video + control)", comparison
    )


def figure08(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """FCT CDF, video traces *with* control flows."""
    comparison = _ensure_comparison(config, ScenarioConfig.video_with_control, comparison)
    return _fct_cdf_figure("fig08", "Content upload time CDF (video + control)", comparison)


def figure09(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """AFCT versus file size, video traces *with* control flows."""
    comparison = _ensure_comparison(config, ScenarioConfig.video_with_control, comparison)
    return _afct_figure(
        "fig09",
        "Average file completion time vs file size (video + control)",
        comparison,
        max_size_bytes=31 * MB,
        num_bins=10,
        x_unit_bytes=MB,
        x_label="File Size (MB)",
    )


# ------------------------------------------------------------------------------------------
# Figures 10-12: video traces without control flows
# ------------------------------------------------------------------------------------------
def figure10(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """Average instantaneous throughput, video traces *without* control flows."""
    comparison = _ensure_comparison(config, ScenarioConfig.video_without_control, comparison)
    return _throughput_figure(
        "fig10", "RandTCP vs SCDA instantaneous average throughput (video only)", comparison
    )


def figure11(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """FCT CDF, video traces *without* control flows."""
    comparison = _ensure_comparison(config, ScenarioConfig.video_without_control, comparison)
    return _fct_cdf_figure("fig11", "Content upload time CDF (video only)", comparison)


def figure12(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """AFCT versus file size, video traces *without* control flows."""
    comparison = _ensure_comparison(config, ScenarioConfig.video_without_control, comparison)
    return _afct_figure(
        "fig12",
        "Average file completion time vs file size (video only)",
        comparison,
        max_size_bytes=31 * MB,
        num_bins=10,
        x_unit_bytes=MB,
        x_label="File Size (MB)",
    )


# ------------------------------------------------------------------------------------------
# Figures 13-16: general datacenter traces
# ------------------------------------------------------------------------------------------
def figure13(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """AFCT versus file size, datacenter traces, K = 1."""
    comparison = _ensure_comparison(
        config, lambda: ScenarioConfig.datacenter(bandwidth_factor=1.0), comparison
    )
    return _afct_figure(
        "fig13",
        "Average file completion time vs file size (datacenter traces, K=1)",
        comparison,
        max_size_bytes=7000 * KB,
        num_bins=10,
        x_unit_bytes=KB,
        x_label="File Size (KBytes)",
    )


def figure14(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """FCT CDF, datacenter traces, K = 1."""
    comparison = _ensure_comparison(
        config, lambda: ScenarioConfig.datacenter(bandwidth_factor=1.0), comparison
    )
    return _fct_cdf_figure("fig14", "Content upload time CDF (datacenter traces, K=1)", comparison)


def figure15(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """AFCT versus file size, datacenter traces, K = 3."""
    comparison = _ensure_comparison(
        config, lambda: ScenarioConfig.datacenter(bandwidth_factor=3.0), comparison
    )
    return _afct_figure(
        "fig15",
        "Average file completion time vs file size (datacenter traces, K=3)",
        comparison,
        max_size_bytes=7000 * KB,
        num_bins=10,
        x_unit_bytes=KB,
        x_label="File Size (KBytes)",
    )


def figure16(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """FCT CDF, datacenter traces, K = 3."""
    comparison = _ensure_comparison(
        config, lambda: ScenarioConfig.datacenter(bandwidth_factor=3.0), comparison
    )
    return _fct_cdf_figure("fig16", "Content upload time CDF (datacenter traces, K=3)", comparison)


# ------------------------------------------------------------------------------------------
# Figures 17-18: Pareto sizes, Poisson arrivals
# ------------------------------------------------------------------------------------------
def figure17(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """Average instantaneous throughput, Pareto/Poisson workload."""
    comparison = _ensure_comparison(config, ScenarioConfig.pareto_poisson, comparison)
    return _throughput_figure(
        "fig17", "RandTCP vs SCDA instantaneous average throughput (Pareto/Poisson)", comparison
    )


def figure18(
    config: Optional[ScenarioConfig] = None, comparison: Optional[ComparisonResult] = None
) -> FigureData:
    """FCT CDF, Pareto/Poisson workload."""
    comparison = _ensure_comparison(config, ScenarioConfig.pareto_poisson, comparison)
    return _fct_cdf_figure("fig18", "File completion time CDF (Pareto/Poisson)", comparison)


#: figure id -> (generator, default scenario constructor)
FIGURE_GENERATORS: Dict[str, Callable[..., FigureData]] = {
    "fig07": figure07,
    "fig08": figure08,
    "fig09": figure09,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    "fig16": figure16,
    "fig17": figure17,
    "fig18": figure18,
}
