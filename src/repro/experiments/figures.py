"""Per-figure generators: regenerate the data series of Figures 7-18.

Each ``figureNN`` function runs (or reuses) the SCDA-vs-RandTCP comparison on
the corresponding scenario and returns a :class:`FigureData` holding exactly
the series the paper plots: throughput-over-time curves, FCT CDFs, or
AFCT-versus-file-size curves, one series per scheme.

The functions accept a ``ScenarioConfig`` so tests and benchmarks can run
scaled-down versions; the defaults match the scenario constructors in
:mod:`repro.experiments.config`.

Every generator also accepts a multi-seed ``ensemble`` (a
:class:`~repro.metrics.replication.ReplicatedComparison`, typically from
:func:`repro.exec.replication.run_replicated_comparison` or
:func:`~repro.exec.replication.ensemble_from_store`): each scheme's curve
becomes the pointwise mean across replicates with a 95 % confidence band
(rendered as extra ``lo``/``hi`` columns by :meth:`FigureData.as_table`).
An N=1 ensemble degrades to exactly the single-seed figure — same series,
same summary, same table bytes — so the pinned outputs stay pinned.
:func:`generate_figure` is the one-call entry point that takes ``seeds=N``
and plumbs the replication through the executor layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison
from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.metrics.fct import size_bin_edges
from repro.metrics.replication import ReplicatedComparison, ReplicatedResult
from repro.metrics.stats import DEFAULT_CONFIDENCE, z_value

MB = 1024.0 * 1024.0
KB = 1024.0

#: Either comparison shape a figure builder accepts.
ComparisonLike = Union[ComparisonResult, ReplicatedComparison]


@dataclass
class FigureData:
    """The data behind one figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    #: series name -> (x values, y values)
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    #: headline comparison numbers for EXPERIMENTS.md
    summary: Dict[str, float] = field(default_factory=dict)
    comparison: Optional[ComparisonResult] = None
    #: series name -> (x, lower, upper) confidence band (multi-seed figures)
    bands: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    #: the multi-seed ensemble behind the figure, when one was used
    ensemble: Optional[ReplicatedComparison] = None

    def add_series(self, name: str, x: np.ndarray, y: np.ndarray) -> None:
        """Attach one named curve."""
        if len(x) != len(y):
            raise ValueError(f"series {name!r}: x and y lengths differ ({len(x)} vs {len(y)})")
        self.series[name] = (np.asarray(x, dtype=float), np.asarray(y, dtype=float))

    def add_band(
        self, name: str, x: np.ndarray, lower: np.ndarray, upper: np.ndarray
    ) -> None:
        """Attach a confidence band around the series called ``name``."""
        if name not in self.series:
            raise ValueError(f"band {name!r} has no matching series")
        if not (len(x) == len(lower) == len(upper)):
            raise ValueError(
                f"band {name!r}: x/lower/upper lengths differ "
                f"({len(x)}/{len(lower)}/{len(upper)})"
            )
        self.bands[name] = (
            np.asarray(x, dtype=float),
            np.asarray(lower, dtype=float),
            np.asarray(upper, dtype=float),
        )

    def as_table(self) -> str:
        """A plain-text rendering of the series (rows = x, one column per series).

        Series with a confidence band get two extra columns — ``<name> lo``
        and ``<name> hi`` — directly after their mean column.  A figure
        without bands renders exactly as it always has, so single-seed
        tables stay byte-identical.
        """
        if not self.series:
            return f"{self.figure_id}: (no data)"
        names = list(self.series)
        header = [self.x_label]
        for name in names:
            header.append(name)
            if name in self.bands:
                header.extend([f"{name} lo", f"{name} hi"])
        lines = [f"# {self.figure_id}: {self.title}", "\t".join(header)]
        reference_x = self.series[names[0]][0]
        for i, x in enumerate(reference_x):
            row = [f"{x:.4g}"]
            for name in names:
                xs, ys = self.series[name]
                row.append(f"{ys[i]:.4g}" if i < len(ys) else "")
                if name in self.bands:
                    _, lower, upper = self.bands[name]
                    row.append(f"{lower[i]:.4g}" if i < len(lower) else "")
                    row.append(f"{upper[i]:.4g}" if i < len(upper) else "")
            lines.append("\t".join(row))
        return "\n".join(lines)


# ------------------------------------------------------------------------------------------
# Builders shared by several figures
# ------------------------------------------------------------------------------------------
#: maps one scheme's result to the (x, y) curve a figure plots
CurveFn = Callable[[SchemeResult], Tuple[np.ndarray, np.ndarray]]


def _add_replicated_series(
    fig: FigureData,
    replicated: ReplicatedResult,
    curve_fn: CurveFn,
    confidence: float = DEFAULT_CONFIDENCE,
    interp_left: Optional[float] = None,
) -> None:
    """One scheme's curve across replicates: pointwise mean + CI band.

    The first *non-empty* replicate's x grid is the reference; the other
    replicates interpolate onto it (their grids — CDF supports, finite
    AFCT bins — generally differ).  ``interp_left`` is the value a curve
    contributes below its own support (CDFs pass 0.0: an empirical CDF *is*
    zero left of its smallest sample, and ``np.interp``'s default clamp to
    ``y[0]`` would fabricate left-tail mass there).  A single replicate
    adds its curve verbatim and no band, so N=1 figures match the
    single-seed output exactly.  Degenerate replicates (no completed flows
    at tiny scale) carry no curve to average in and are skipped rather
    than fabricated — wherever in the ensemble they sit, including
    replicate 0.
    """
    curves = [curve_fn(result) for result in replicated.results]
    name = replicated.scheme
    if len(curves) == 1:
        fig.add_series(name, *curves[0])
        return
    non_empty = [(x, y) for x, y in curves if len(x) > 0]
    if not non_empty:
        fig.add_series(name, *curves[0])  # every replicate empty: empty series
        return
    x0 = non_empty[0][0]
    stacked = np.vstack(
        [np.interp(x0, x, y, left=interp_left) for x, y in non_empty]
    )
    mean = stacked.mean(axis=0)
    fig.add_series(name, x0, mean)
    n = stacked.shape[0]
    if n > 1:
        std = stacked.std(axis=0, ddof=1)
        half = z_value(confidence) * std / np.sqrt(n)
        fig.add_band(name, x0, mean - half, mean + half)


def _replicated_summary(ensemble: ReplicatedComparison) -> Dict[str, float]:
    """Flat headline numbers for a multi-seed figure.

    Same keys as :meth:`ComparisonResult.summary` (holding the
    across-replicate means) plus ``<key>_ci_lower``/``<key>_ci_upper``
    bounds.  An N=1 ensemble returns its sole comparison's summary
    unchanged, keeping the pinned single-seed values bit-identical.
    """
    if ensemble.n_replicates == 1:
        return ensemble.comparisons()[0].summary()
    flat: Dict[str, float] = {}
    for key, stats in ensemble.summary().items():
        flat[key] = stats["mean"]
        flat[f"{key}_ci_lower"] = stats["ci_lower"]
        flat[f"{key}_ci_upper"] = stats["ci_upper"]
    return flat


def _build_series_figure(
    fig: FigureData,
    comparison: ComparisonLike,
    curve_fn: CurveFn,
    interp_left: Optional[float] = None,
) -> FigureData:
    """Fill ``fig`` from either comparison shape: plain curves, or mean + band."""
    if isinstance(comparison, ReplicatedComparison):
        fig.ensemble = comparison
        fig.comparison = comparison.comparisons()[0]
        for replicated in (comparison.baseline, comparison.candidate):
            _add_replicated_series(fig, replicated, curve_fn, interp_left=interp_left)
        fig.summary = _replicated_summary(comparison)
        return fig
    fig.comparison = comparison
    for result in (comparison.baseline, comparison.candidate):
        x, y = curve_fn(result)
        fig.add_series(result.scheme, x, y)
    fig.summary = comparison.summary()
    return fig


def _throughput_figure(
    figure_id: str, title: str, comparison: ComparisonLike
) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label="Simulation time (sec)",
        y_label="Avg. Inst. Thpt (KB/sec)",
    )
    return _build_series_figure(fig, comparison, lambda r: r.throughput.series())


def _fct_cdf_figure(figure_id: str, title: str, comparison: ComparisonLike) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label="FCT (sec)",
        y_label="FCT CDF",
    )
    # An empirical CDF is 0 left of its smallest sample: replicates whose
    # support starts later must contribute 0 there, not their first value.
    return _build_series_figure(fig, comparison, lambda r: r.fct_cdf(), interp_left=0.0)


def _afct_figure(
    figure_id: str,
    title: str,
    comparison: ComparisonLike,
    max_size_bytes: float,
    num_bins: int,
    x_unit_bytes: float,
    x_label: str,
    min_size_bytes: float = 1.0,
) -> FigureData:
    fig = FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="AFCT (sec)",
    )
    edges = size_bin_edges(min_size_bytes, max_size_bytes, num_bins)

    def afct_curve(result: SchemeResult) -> Tuple[np.ndarray, np.ndarray]:
        centers, afct, _counts = result.afct_curve(edges)
        mask = np.isfinite(afct)
        return centers[mask] / x_unit_bytes, afct[mask]

    return _build_series_figure(fig, comparison, afct_curve)


def _ensure_comparison(
    config: Optional[ScenarioConfig],
    default_config: Callable[[], ScenarioConfig],
    comparison: Optional[ComparisonResult],
    ensemble: Optional[ReplicatedComparison] = None,
) -> ComparisonLike:
    if ensemble is not None:
        if comparison is not None:
            raise ValueError("pass either comparison or ensemble, not both")
        return ensemble
    if comparison is not None:
        return comparison
    cfg = config if config is not None else default_config()
    return run_comparison(cfg)


#: figure id -> the *name* of the paper scenario its generator defaults to.
#: The single source of each figure's default: ``figureNN``,
#: :func:`generate_figure` and the CLI's ``figure`` command all read it.
FIGURE_DEFAULT_SCENARIOS: Dict[str, str] = {
    "fig07": "video", "fig08": "video", "fig09": "video",
    "fig10": "video-nocontrol", "fig11": "video-nocontrol", "fig12": "video-nocontrol",
    "fig13": "datacenter-k1", "fig14": "datacenter-k1",
    "fig15": "datacenter-k3", "fig16": "datacenter-k3",
    "fig17": "pareto", "fig18": "pareto",
}

_SCENARIO_CONSTRUCTORS: Dict[str, Callable[[], ScenarioConfig]] = {
    "video": ScenarioConfig.video_with_control,
    "video-nocontrol": ScenarioConfig.video_without_control,
    "datacenter-k1": lambda: ScenarioConfig.datacenter(bandwidth_factor=1.0),
    "datacenter-k3": lambda: ScenarioConfig.datacenter(bandwidth_factor=3.0),
    "pareto": ScenarioConfig.pareto_poisson,
}

#: figure id -> default ``ScenarioConfig`` constructor (derived from
#: :data:`FIGURE_DEFAULT_SCENARIOS`)
FIGURE_DEFAULT_CONFIGS: Dict[str, Callable[[], ScenarioConfig]] = {
    figure_id: _SCENARIO_CONSTRUCTORS[scenario_name]
    for figure_id, scenario_name in FIGURE_DEFAULT_SCENARIOS.items()
}


# ------------------------------------------------------------------------------------------
# Figures 7-9: video traces with control flows
# ------------------------------------------------------------------------------------------
def figure07(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """Average instantaneous throughput, video traces *with* control flows."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig07"], comparison, ensemble)
    return _throughput_figure(
        "fig07", "RandTCP vs SCDA instantaneous average throughput (video + control)", comparison
    )


def figure08(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """FCT CDF, video traces *with* control flows."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig08"], comparison, ensemble)
    return _fct_cdf_figure("fig08", "Content upload time CDF (video + control)", comparison)


def figure09(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """AFCT versus file size, video traces *with* control flows."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig09"], comparison, ensemble)
    return _afct_figure(
        "fig09",
        "Average file completion time vs file size (video + control)",
        comparison,
        max_size_bytes=31 * MB,
        num_bins=10,
        x_unit_bytes=MB,
        x_label="File Size (MB)",
    )


# ------------------------------------------------------------------------------------------
# Figures 10-12: video traces without control flows
# ------------------------------------------------------------------------------------------
def figure10(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """Average instantaneous throughput, video traces *without* control flows."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig10"], comparison, ensemble)
    return _throughput_figure(
        "fig10", "RandTCP vs SCDA instantaneous average throughput (video only)", comparison
    )


def figure11(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """FCT CDF, video traces *without* control flows."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig11"], comparison, ensemble)
    return _fct_cdf_figure("fig11", "Content upload time CDF (video only)", comparison)


def figure12(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """AFCT versus file size, video traces *without* control flows."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig12"], comparison, ensemble)
    return _afct_figure(
        "fig12",
        "Average file completion time vs file size (video only)",
        comparison,
        max_size_bytes=31 * MB,
        num_bins=10,
        x_unit_bytes=MB,
        x_label="File Size (MB)",
    )


# ------------------------------------------------------------------------------------------
# Figures 13-16: general datacenter traces
# ------------------------------------------------------------------------------------------
def figure13(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """AFCT versus file size, datacenter traces, K = 1."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig13"], comparison, ensemble)
    return _afct_figure(
        "fig13",
        "Average file completion time vs file size (datacenter traces, K=1)",
        comparison,
        max_size_bytes=7000 * KB,
        num_bins=10,
        x_unit_bytes=KB,
        x_label="File Size (KBytes)",
    )


def figure14(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """FCT CDF, datacenter traces, K = 1."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig14"], comparison, ensemble)
    return _fct_cdf_figure("fig14", "Content upload time CDF (datacenter traces, K=1)", comparison)


def figure15(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """AFCT versus file size, datacenter traces, K = 3."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig15"], comparison, ensemble)
    return _afct_figure(
        "fig15",
        "Average file completion time vs file size (datacenter traces, K=3)",
        comparison,
        max_size_bytes=7000 * KB,
        num_bins=10,
        x_unit_bytes=KB,
        x_label="File Size (KBytes)",
    )


def figure16(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """FCT CDF, datacenter traces, K = 3."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig16"], comparison, ensemble)
    return _fct_cdf_figure("fig16", "Content upload time CDF (datacenter traces, K=3)", comparison)


# ------------------------------------------------------------------------------------------
# Figures 17-18: Pareto sizes, Poisson arrivals
# ------------------------------------------------------------------------------------------
def figure17(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """Average instantaneous throughput, Pareto/Poisson workload."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig17"], comparison, ensemble)
    return _throughput_figure(
        "fig17", "RandTCP vs SCDA instantaneous average throughput (Pareto/Poisson)", comparison
    )


def figure18(
    config: Optional[ScenarioConfig] = None,
    comparison: Optional[ComparisonResult] = None,
    ensemble: Optional[ReplicatedComparison] = None,
) -> FigureData:
    """FCT CDF, Pareto/Poisson workload."""
    comparison = _ensure_comparison(config, FIGURE_DEFAULT_CONFIGS["fig18"], comparison, ensemble)
    return _fct_cdf_figure("fig18", "File completion time CDF (Pareto/Poisson)", comparison)


#: figure id -> (generator, default scenario constructor)
FIGURE_GENERATORS: Dict[str, Callable[..., FigureData]] = {
    "fig07": figure07,
    "fig08": figure08,
    "fig09": figure09,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    "fig16": figure16,
    "fig17": figure17,
    "fig18": figure18,
}



def generate_figure(
    figure_id: str,
    config: Optional[ScenarioConfig] = None,
    seeds: int = 1,
    executor="serial",
    max_workers: Optional[int] = None,
    store=None,
    policy=None,
    fallback: bool = True,
    store_fsync: Optional[bool] = None,
) -> FigureData:
    """One figure, optionally as an N-seed ensemble with error bands.

    With all defaults (``seeds=1``, serial executor, no store) this is the
    historical single-seed path — the generator called directly,
    bit-identical to before the replication layer existed.  Any non-default
    execution option routes through
    :func:`repro.exec.replication.run_replicated_comparison`, so a
    ``seeds=1`` run with a store still caches (and resumes from) its
    results; the N=1 ensemble renders the identical figure.  ``seeds=N``
    hands the ensemble to the generator, which renders mean curves with
    confidence bands.
    """
    if figure_id not in FIGURE_GENERATORS:
        raise ValueError(
            f"unknown figure {figure_id!r}; "
            f"choose from {', '.join(sorted(FIGURE_GENERATORS))}"
        )
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    generator = FIGURE_GENERATORS[figure_id]
    if seeds == 1 and store is None and executor == "serial" and policy is None:
        return generator(config=config)
    # Lazy import: repro.exec builds on the experiments layer.
    from repro.exec.replication import run_replicated_comparison

    scenario = config if config is not None else FIGURE_DEFAULT_CONFIGS[figure_id]()
    ensemble = run_replicated_comparison(
        scenario,
        seeds=seeds,
        executor=executor,
        max_workers=max_workers,
        store=store,
        policy=policy,
        fallback=fallback,
        store_fsync=store_fsync,
    )
    return generator(ensemble=ensemble)
