"""Builds and runs a full stack for one scheme and one scenario.

Everything here resolves through the plugin registries
(:mod:`repro.registry`): the scenario's topology and workload are string
keys on the :class:`~repro.experiments.spec.ScenarioSpec`, schemes may be
given as registry keys (``"scda"``, ``"rand-tcp"``, ``"hedera"``, ...) or as
:class:`~repro.baselines.schemes.SchemeSpec` objects, and placements are
built by the placement registry.  :func:`run_scenario` is the declarative
entry point; :func:`run_comparison` and :func:`run_scheme` remain for
callers that hold scheme objects.  All of them also accept a legacy
:class:`~repro.experiments.config.ScenarioConfig`, which is normalised via
``to_spec()`` and produces bit-identical results.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Optional, Sequence, Union

from repro.baselines.hedera import HederaScheduler
from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME, SchemeSpec
from repro.baselines.vlb import VlbRouter
from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content
from repro.cluster.placement import PlacementContext, PlacementPolicy
from repro.cluster.replication import ReplicationConfig
from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.experiments.spec import ScenarioSpec, as_spec
from repro.metrics.collector import MetricsCollector
from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.metrics.tenancy import per_tenant_extras
from repro.network.fabric import FabricConfig, FabricSimulator
from repro.network.flow import FlowKind
from repro.network.routing import EcmpRouter, HashingEcmpRouter, Router
from repro.network.topology import Topology
from repro.network.transport import (
    IdealMaxMinTransport,
    ScdaTransport,
    TcpTransport,
)
from repro.registry import PLACEMENTS, SCHEMES
from repro.sim.engine import Simulator
from repro.sim.random import derive_seed
from repro.workloads.traces import FlowRequest, Operation, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.job import ExperimentJob
    from repro.experiments.config import ScenarioConfig

#: A scenario in any accepted form: declarative spec, legacy config, or dict.
ScenarioLike = Union[ScenarioSpec, "ScenarioConfig", Mapping[str, Any]]

#: A scheme as a registry key or a full spec object.
SchemeLike = Union[str, SchemeSpec]


@dataclass
class SchemeStack:
    """Everything built for one scheme run."""

    spec: SchemeSpec
    scenario: ScenarioSpec
    sim: Simulator
    topology: Topology
    fabric: FabricSimulator
    cluster: StorageCluster
    collector: MetricsCollector
    controller: Optional[ScdaController] = None
    placement: Optional[PlacementPolicy] = None
    router: Optional[Router] = None
    hedera: Optional[HederaScheduler] = None
    #: Per-stack content ids: numbering restarts at 0 for every run so the
    #: generated content keys (which the FES hashes across name nodes) do not
    #: depend on process history or on concurrently running jobs.
    content_ids: Iterator[int] = field(default_factory=itertools.count)


def resolve_scheme(scheme: SchemeLike) -> SchemeSpec:
    """A :class:`SchemeSpec` from a registry key (or pass a spec through)."""
    if isinstance(scheme, SchemeSpec):
        return scheme
    return SCHEMES.build(scheme)


def generate_workload(scenario: ScenarioLike) -> Workload:
    """The scenario's workload (identical for every scheme, keyed by the seed).

    The generator is resolved through the workload registry, so an unknown
    kind fails with a message listing the registered names.
    """
    return as_spec(scenario).build_workload()


def _build_router(
    scheme: SchemeSpec, scenario: ScenarioSpec, topology: Topology
) -> Router:
    """Path selection for this (scheme, scenario) pair.

    ``auto`` keeps the historical behaviour: plain shortest path on the
    single-path tree, equal-cost routing on multi-path fabrics.
    """
    routing = scheme.routing
    if routing == "auto":
        routing = "shortest" if scenario.topology == "tree" else "ecmp-plain"
    if routing == "shortest":
        return Router(topology)
    if routing == "ecmp-plain":
        return EcmpRouter(topology)
    if routing == "ecmp":
        return HashingEcmpRouter(topology)
    if routing == "vlb":
        return VlbRouter(topology, seed=derive_seed(scenario.seed, f"vlb:{scheme.name}"))
    raise ValueError(f"unknown routing {routing!r}")  # pragma: no cover - SchemeSpec validates


def build_stack(scenario: ScenarioLike, scheme: SchemeLike) -> SchemeStack:
    """Instantiate the simulator, network, control plane and cluster for a scheme."""
    spec = as_spec(scenario)
    scheme = resolve_scheme(scheme)
    sim = Simulator()
    topology = spec.build_topology()
    router = _build_router(scheme, spec, topology)

    scda_params = spec.build_scda_params()

    controller: Optional[ScdaController] = None
    if scheme.needs_controller:
        controller = ScdaController(
            sim,
            topology,
            ScdaControllerConfig(
                params=scda_params,
                scale_down_threshold_bps=spec.scale_down_threshold_bps,
                power_aware_selection=scheme.power_aware,
                use_simplified_metric=scheme.simplified_metric,
            ),
        )

    if scheme.transport == "tcp":
        transport = TcpTransport()
    elif scheme.transport == "scda":
        if controller is None:  # pragma: no cover - defensive, needs_controller covers it
            raise ValueError("SCDA transport requires a controller")
        transport = ScdaTransport(controller)
    elif scheme.transport == "ideal":
        transport = IdealMaxMinTransport()
    else:  # pragma: no cover - SchemeSpec validates
        raise ValueError(f"unknown transport {scheme.transport!r}")

    fabric = FabricSimulator(
        sim,
        topology,
        transport,
        router=router,
        config=FabricConfig(control_interval_s=spec.control_interval_s),
    )
    if controller is not None:
        controller.attach_fabric(fabric)

    placement = PLACEMENTS.build(
        scheme.placement,
        PlacementContext(
            seed=derive_seed(spec.seed, f"placement:{scheme.name}"),
            fabric=fabric,
            controller=controller,
        ),
    )

    cluster = StorageCluster(
        sim,
        topology,
        fabric,
        placement,
        config=StorageClusterConfig(
            num_name_nodes=spec.num_name_nodes,
            setup_rtts=spec.setup_rtts,
            replication=ReplicationConfig(enabled=spec.replication_enabled),
        ),
    )

    hedera: Optional[HederaScheduler] = None
    if scheme.use_hedera:
        hedera_router = router if isinstance(router, EcmpRouter) else EcmpRouter(topology)
        hedera = HederaScheduler(fabric, hedera_router, spec.build_hedera_config())
        hedera.start()

    collector = MetricsCollector(
        fabric,
        sample_interval_s=spec.throughput_sample_interval_s,
        record_kinds=(FlowKind.CONTROL, FlowKind.VIDEO, FlowKind.DATA),
    )

    return SchemeStack(
        spec=scheme,
        scenario=spec,
        sim=sim,
        topology=topology,
        fabric=fabric,
        cluster=cluster,
        collector=collector,
        controller=controller,
        placement=placement,
        router=router,
        hedera=hedera,
    )


def _issue_request(stack: SchemeStack, request: FlowRequest, clients) -> None:
    """Submit one workload request to the cluster at its arrival time."""
    client = clients[request.client_index % len(clients)]
    cluster = stack.cluster
    if request.operation is Operation.READ and request.content_ref:
        nns = cluster.name_node_for_content(request.content_ref)
        if nns.knows(request.content_ref):
            cluster.read(
                client,
                request.content_ref,
                flow_kind=request.flow_kind,
                multiplicity=request.multiplicity,
                tenant=request.tenant,
            )
            return
    content = Content(
        content_id=f"{request.flow_kind.value}-{next(stack.content_ids)}",
        size_bytes=request.size_bytes,
        declared_class=request.content_class,
        owner=client.node_id,
    )
    cluster.write(
        client,
        content,
        flow_kind=request.flow_kind,
        multiplicity=request.multiplicity,
        tenant=request.tenant,
    )


def _arm_dynamics(dynamics, stack: SchemeStack, clients) -> None:
    """Schedule the scenario's dynamics script against this stack.

    Workload-surge events issue extra writes through the same content-id
    counter as the base workload, so surge traffic is first-class cluster
    traffic (FES → NNS → placement → data flow) rather than raw fabric flows.
    """
    from repro.dynamics import DynamicsRuntime
    from repro.network.flow import FlowKind as _FlowKind

    def issue_surge_write(
        client_index: int,
        size_bytes: float,
        kind: _FlowKind,
        multiplicity: int = 1,
        tenant: str = "",
    ) -> None:
        client = clients[client_index % len(clients)]
        content = Content(
            content_id=f"surge-{next(stack.content_ids)}",
            size_bytes=size_bytes,
            owner=client.node_id,
        )
        stack.cluster.write(
            client, content, flow_kind=kind, multiplicity=multiplicity, tenant=tenant
        )

    runtime = DynamicsRuntime(
        sim=stack.sim,
        topology=stack.topology,
        fabric=stack.fabric,
        cluster=stack.cluster,
        seed=stack.scenario.seed,
        issue_write=issue_surge_write,
    )
    dynamics.arm(runtime)


def run_scheme(
    scenario: ScenarioLike, scheme: SchemeLike, workload: Optional[Workload] = None
) -> SchemeResult:
    """Run one scheme over the scenario and return its measurements."""
    spec = as_spec(scenario)
    stack = build_stack(spec, scheme)
    if workload is None:
        workload = generate_workload(spec)

    clients = stack.topology.clients()
    if not clients:
        raise ValueError("scenario topology has no client nodes")

    sim = stack.sim
    for request in workload:
        sim.call_at(request.arrival_time_s, _issue_request, stack, request, clients)

    dynamics = spec.build_dynamics()
    if not dynamics.is_noop:
        _arm_dynamics(dynamics, stack, clients)

    stack.collector.start_sampling()
    wall_start = time.perf_counter()
    sim.run(until=spec.total_time_s)
    wall_clock = time.perf_counter() - wall_start
    # Full detach (not just stop_sampling): the stack may outlive this call
    # in a long-lived worker, and a detached collector cannot record stray
    # completions from later activity on the same fabric.
    stack.collector.detach()
    if stack.hedera is not None:
        stack.hedera.stop()

    sla_violations = (
        stack.controller.sla_monitor.count if stack.controller is not None else 0
    )
    nns_writes = [nns.write_requests for nns in stack.cluster.name_nodes.values()]
    extras = {
        "requests_issued": float(len(workload)),
        "requests_completed": float(len(stack.cluster.completed_requests())),
        "flows_started": float(stack.collector.flows_started),
        "events_processed": float(sim.events_processed),
        # Metadata-plane load: lets scalability studies compare NNS counts
        # from serialised results alone, without reaching into the stack.
        "nns_write_requests_total": float(sum(nns_writes)),
        "nns_write_requests_max": float(max(nns_writes)) if nns_writes else 0.0,
        # Dynamics accounting — all zero on a static world, so results with
        # and without an (empty) dynamics script stay bit-identical.
        "links_failed": float(stack.fabric.link_failures),
        "links_restored": float(stack.fabric.link_recoveries),
        "capacity_changes": float(stack.fabric.capacity_changes),
        "flows_rerouted_on_failure": float(stack.fabric.flows_rerouted_on_failure),
        "flows_aborted_on_failure": float(stack.fabric.flows_aborted_on_failure),
        "servers_departed": float(stack.cluster.servers_departed),
        "servers_rejoined": float(stack.cluster.servers_rejoined),
        "requests_disrupted": float(stack.cluster.requests_disrupted),
        "re_replications_planned": float(stack.cluster.replication.re_replications_planned),
        "re_replications_completed": float(stack.cluster.replication.re_replications_completed),
    }
    if stack.hedera is not None:
        extras["hedera_reroutes"] = float(stack.hedera.reroutes)
    if stack.collector.sessions_started != stack.collector.flows_started:
        # Only aggregate runs carry session accounting, so discrete runs
        # keep their exact historical payload.
        extras["sessions_started"] = float(stack.collector.sessions_started)
        extras["sessions_completed"] = float(
            sum(r.multiplicity for r in stack.collector.records)
        )
    extras.update(per_tenant_extras(stack.collector.records))
    for key, value in stack.collector.kernel_extras().items():
        extras[f"kernel_{key}"] = value
    result = SchemeResult(
        scheme=stack.spec.name,
        records=stack.collector.records,
        throughput=stack.collector.throughput,
        availability=stack.collector.availability,
        sla_violations=sla_violations,
        wall_clock_s=wall_clock,
        extras=extras,
    )
    return result


def run_job(job: "ExperimentJob") -> SchemeResult:
    """Pure function from one :class:`~repro.exec.job.ExperimentJob` to its result.

    This is the only thing executor workers call: everything the run needs is
    (re)built from the job's serialisable spec — simulator, topology, fabric,
    cluster, workload — so the function is safe to invoke from a spawn-started
    process, a thread, or the current interpreter, and returns a bit-identical
    :class:`~repro.metrics.comparison.SchemeResult` in each case (modulo wall
    clock).
    """
    spec = job.resolved_spec()
    return run_scheme(spec, job.resolved_scheme())


def run_comparison(
    scenario: ScenarioLike,
    candidate: SchemeLike = SCDA_SCHEME,
    baseline: SchemeLike = RAND_TCP,
    workload: Optional[Workload] = None,
) -> ComparisonResult:
    """Run the candidate and the baseline on the *same* workload and compare."""
    spec = as_spec(scenario)
    if workload is None:
        workload = generate_workload(spec)
    candidate_result = run_scheme(spec, candidate, workload)
    baseline_result = run_scheme(spec, baseline, workload)
    return ComparisonResult(
        scenario=spec.name, candidate=candidate_result, baseline=baseline_result
    )


def run_scenario(
    scenario: ScenarioLike,
    schemes: Sequence[SchemeLike] = ("scda", "rand-tcp"),
    workload: Optional[Workload] = None,
) -> ComparisonResult:
    """Declarative entry point: run ``schemes[0]`` vs ``schemes[1]`` on a scenario.

    ``scenario`` may be a :class:`~repro.experiments.spec.ScenarioSpec`, a
    legacy :class:`~repro.experiments.config.ScenarioConfig`, or a spec dict
    (e.g. parsed from a scenario JSON file); schemes may be registry keys or
    :class:`~repro.baselines.schemes.SchemeSpec` objects.  Both schemes see
    the identical workload.  For a single scheme use :func:`run_scheme`.
    """
    resolved = [resolve_scheme(s) for s in schemes]
    if len(resolved) != 2:
        raise ValueError(
            f"run_scenario compares exactly two schemes (candidate, baseline); "
            f"got {len(resolved)} — use run_scheme for single runs"
        )
    return run_comparison(
        scenario, candidate=resolved[0], baseline=resolved[1], workload=workload
    )
