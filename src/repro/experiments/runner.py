"""Builds and runs a full stack for one scheme and one scenario."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME, SchemeSpec
from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import (
    LeastLoadedPlacement,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    ScdaPlacement,
)
from repro.cluster.replication import ReplicationConfig
from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.core.rate_metric import ScdaParams
from repro.experiments.config import ScenarioConfig, WorkloadKind
from repro.metrics.collector import MetricsCollector
from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.network.fabric import FabricConfig, FabricSimulator
from repro.network.flow import FlowKind
from repro.network.topology import Topology
from repro.network.transport import (
    IdealMaxMinTransport,
    ScdaTransport,
    TcpTransport,
)
from repro.network.tree import build_tree_topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams, derive_seed
from repro.workloads.datacenter_traces import generate_datacenter_workload
from repro.workloads.pareto_poisson import generate_pareto_poisson_workload
from repro.workloads.traces import FlowRequest, Operation, Workload
from repro.workloads.video_traces import generate_video_workload


@dataclass
class SchemeStack:
    """Everything built for one scheme run."""

    spec: SchemeSpec
    sim: Simulator
    topology: Topology
    fabric: FabricSimulator
    cluster: StorageCluster
    collector: MetricsCollector
    controller: Optional[ScdaController] = None
    placement: Optional[PlacementPolicy] = None


def generate_workload(config: ScenarioConfig) -> Workload:
    """The scenario's workload (identical for every scheme, keyed by the seed)."""
    if config.workload_kind is WorkloadKind.VIDEO:
        return generate_video_workload(config.video, seed=config.seed)
    if config.workload_kind is WorkloadKind.DATACENTER:
        return generate_datacenter_workload(config.datacenter, seed=config.seed)
    if config.workload_kind is WorkloadKind.PARETO_POISSON:
        return generate_pareto_poisson_workload(config.pareto, seed=config.seed)
    raise ValueError(f"unknown workload kind {config.workload_kind!r}")


def build_stack(config: ScenarioConfig, spec: SchemeSpec) -> SchemeStack:
    """Instantiate the simulator, network, control plane and cluster for a scheme."""
    sim = Simulator()
    topology = build_tree_topology(config.topology)

    scda_params = ScdaParams(
        alpha=config.scda_params.alpha,
        beta=config.scda_params.beta,
        control_interval_s=config.control_interval_s,
        drain_time_s=config.scda_params.drain_time_s,
        min_rate_bps=config.scda_params.min_rate_bps,
    )

    controller: Optional[ScdaController] = None
    if spec.needs_controller:
        controller = ScdaController(
            sim,
            topology,
            ScdaControllerConfig(
                params=scda_params,
                scale_down_threshold_bps=config.scale_down_threshold_bps,
                power_aware_selection=spec.power_aware,
                use_simplified_metric=spec.simplified_metric,
            ),
        )

    if spec.transport == "tcp":
        transport = TcpTransport()
    elif spec.transport == "scda":
        if controller is None:  # pragma: no cover - defensive, needs_controller covers it
            raise ValueError("SCDA transport requires a controller")
        transport = ScdaTransport(controller)
    elif spec.transport == "ideal":
        transport = IdealMaxMinTransport()
    else:  # pragma: no cover - SchemeSpec validates
        raise ValueError(f"unknown transport {spec.transport!r}")

    fabric = FabricSimulator(
        sim,
        topology,
        transport,
        config=FabricConfig(control_interval_s=config.control_interval_s),
    )
    if controller is not None:
        controller.attach_fabric(fabric)

    placement_seed = derive_seed(config.seed, f"placement:{spec.name}")
    if spec.placement == "random":
        placement: PlacementPolicy = RandomPlacement(seed=placement_seed)
    elif spec.placement == "scda":
        if controller is None:  # pragma: no cover - defensive
            raise ValueError("SCDA placement requires a controller")
        placement = ScdaPlacement(controller)
    elif spec.placement == "round-robin":
        placement = RoundRobinPlacement()
    elif spec.placement == "least-loaded":
        placement = LeastLoadedPlacement(fabric)
    else:  # pragma: no cover - SchemeSpec validates
        raise ValueError(f"unknown placement {spec.placement!r}")

    cluster = StorageCluster(
        sim,
        topology,
        fabric,
        placement,
        config=StorageClusterConfig(
            setup_rtts=config.setup_rtts,
            replication=ReplicationConfig(enabled=config.replication_enabled),
        ),
    )

    collector = MetricsCollector(
        fabric,
        sample_interval_s=config.throughput_sample_interval_s,
        record_kinds=(FlowKind.CONTROL, FlowKind.VIDEO, FlowKind.DATA),
    )

    return SchemeStack(
        spec=spec,
        sim=sim,
        topology=topology,
        fabric=fabric,
        cluster=cluster,
        collector=collector,
        controller=controller,
        placement=placement,
    )


def _issue_request(stack: SchemeStack, request: FlowRequest, clients) -> None:
    """Submit one workload request to the cluster at its arrival time."""
    client = clients[request.client_index % len(clients)]
    cluster = stack.cluster
    if request.operation is Operation.READ and request.content_ref:
        nns = cluster.name_node_for_content(request.content_ref)
        if nns.knows(request.content_ref):
            cluster.read(client, request.content_ref, flow_kind=request.flow_kind)
            return
    content = Content.create(
        size_bytes=request.size_bytes,
        declared_class=request.content_class,
        owner=client.node_id,
        prefix=request.flow_kind.value,
    )
    cluster.write(client, content, flow_kind=request.flow_kind)


def run_scheme(
    config: ScenarioConfig, spec: SchemeSpec, workload: Optional[Workload] = None
) -> SchemeResult:
    """Run one scheme over the scenario and return its measurements."""
    stack = build_stack(config, spec)
    if workload is None:
        workload = generate_workload(config)

    clients = stack.topology.clients()
    if not clients:
        raise ValueError("scenario topology has no client nodes")

    sim = stack.sim
    for request in workload:
        sim.call_at(request.arrival_time_s, _issue_request, stack, request, clients)

    stack.collector.start_sampling()
    wall_start = time.perf_counter()
    sim.run(until=config.total_time_s)
    wall_clock = time.perf_counter() - wall_start
    stack.collector.stop_sampling()

    sla_violations = (
        stack.controller.sla_monitor.count if stack.controller is not None else 0
    )
    result = SchemeResult(
        scheme=spec.name,
        records=stack.collector.records,
        throughput=stack.collector.throughput,
        sla_violations=sla_violations,
        wall_clock_s=wall_clock,
        extras={
            "requests_issued": float(len(workload)),
            "requests_completed": float(len(stack.cluster.completed_requests())),
            "events_processed": float(sim.events_processed),
        },
    )
    return result


def run_comparison(
    config: ScenarioConfig,
    candidate: SchemeSpec = SCDA_SCHEME,
    baseline: SchemeSpec = RAND_TCP,
) -> ComparisonResult:
    """Run the candidate and the baseline on the *same* workload and compare."""
    workload = generate_workload(config)
    candidate_result = run_scheme(config, candidate, workload)
    baseline_result = run_scheme(config, baseline, workload)
    return ComparisonResult(
        scenario=config.name, candidate=candidate_result, baseline=baseline_result
    )
