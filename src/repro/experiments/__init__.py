"""Experiment harness: scenarios, the runner, and per-figure generators.

* :mod:`~repro.experiments.config` — :class:`ScenarioConfig`, with named
  constructors for every scenario of the paper's evaluation section.
* :mod:`~repro.experiments.runner` — builds a full stack (topology, fabric,
  transport, controller, cluster, workload) for a scheme and runs it;
  :func:`run_comparison` runs SCDA and RandTCP on the identical workload.
* :mod:`~repro.experiments.figures` — one generator per figure (7-18) that
  returns the plotted series.
* :mod:`~repro.experiments.shapes` — qualitative shape checks (who wins, by
  roughly how much) used by the tests and benchmarks.
"""

from repro.experiments.config import ScenarioConfig, WorkloadKind
from repro.experiments.runner import (
    SchemeStack,
    build_stack,
    run_scheme,
    run_comparison,
)
from repro.experiments.figures import (
    FigureData,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    figure18,
    FIGURE_GENERATORS,
)
from repro.experiments.shapes import ShapeCheck, check_comparison_shape
from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    sweep_control_interval,
    sweep_offered_load,
)

__all__ = [
    "ScenarioConfig",
    "WorkloadKind",
    "SchemeStack",
    "build_stack",
    "run_scheme",
    "run_comparison",
    "FigureData",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure18",
    "FIGURE_GENERATORS",
    "ShapeCheck",
    "check_comparison_shape",
    "SweepPoint",
    "SweepResult",
    "sweep_control_interval",
    "sweep_offered_load",
]
