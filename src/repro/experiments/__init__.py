"""Experiment harness: scenarios, the runner, and per-figure generators.

* :mod:`~repro.experiments.spec` — the declarative, registry-driven
  :class:`ScenarioSpec` (string-keyed topology/workload plus typed params,
  JSON round-trip for reproducible scenario files).
* :mod:`~repro.experiments.config` — :class:`ScenarioConfig`, a typed shim
  over the spec with named constructors for every scenario of the paper's
  evaluation section.
* :mod:`~repro.experiments.runner` — builds a full stack (topology, fabric,
  transport, controller, cluster, workload) for a scheme and runs it;
  :func:`run_scenario` / :func:`run_comparison` run two schemes on the
  identical workload, and :func:`run_job` is the pure job → result function
  the :mod:`repro.exec` executor backends call.
* :mod:`~repro.experiments.figures` — one generator per figure (7-18) that
  returns the plotted series.
* :mod:`~repro.experiments.shapes` — qualitative shape checks (who wins, by
  roughly how much) used by the tests and benchmarks.
"""

from repro.experiments.config import ScenarioConfig, WorkloadKind
from repro.experiments.spec import ScenarioSpec, as_spec
from repro.experiments.runner import (
    SchemeStack,
    build_stack,
    resolve_scheme,
    run_job,
    run_scenario,
    run_scheme,
    run_comparison,
)
from repro.experiments.figures import (
    FigureData,
    figure07,
    figure08,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    figure18,
    FIGURE_GENERATORS,
)
from repro.experiments.shapes import ShapeCheck, check_comparison_shape
from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    sweep_control_interval,
    sweep_offered_load,
)

__all__ = [
    "ScenarioConfig",
    "WorkloadKind",
    "ScenarioSpec",
    "as_spec",
    "resolve_scheme",
    "SchemeStack",
    "build_stack",
    "run_job",
    "run_scenario",
    "run_scheme",
    "run_comparison",
    "FigureData",
    "figure07",
    "figure08",
    "figure09",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "figure18",
    "FIGURE_GENERATORS",
    "ShapeCheck",
    "check_comparison_shape",
    "SweepPoint",
    "SweepResult",
    "sweep_control_interval",
    "sweep_offered_load",
]
