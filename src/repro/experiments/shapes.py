"""Qualitative shape checks.

The reproduction is not expected to match the paper's absolute numbers (our
substrate is a flow-level simulator, not the authors' NS-2 setup), but the
*shape* of every result should hold:

* SCDA's mean FCT is lower than RandTCP's (paper: ≈50 % lower; we require a
  configurable margin, 20 % by default);
* SCDA's average instantaneous throughput is at least RandTCP's;
* SCDA's FCT CDF is (mostly) above RandTCP's — flows finish earlier;
* SCDA's AFCT curve fluctuates less across file-size bins than RandTCP's
  (the paper calls out RandTCP's "wild fluctuations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.metrics.comparison import ComparisonResult
from repro.metrics.fct import size_bin_edges


@dataclass
class ShapeCheck:
    """Outcome of the qualitative checks for one comparison."""

    scenario: str
    fct_improved: bool
    fct_reduction_fraction: float
    throughput_not_worse: bool
    throughput_gain_fraction: float
    cdf_mostly_dominates: bool
    cdf_dominance: float
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        """True when every qualitative claim holds."""
        return self.fct_improved and self.throughput_not_worse and self.cdf_mostly_dominates


def check_comparison_shape(
    comparison: ComparisonResult,
    min_fct_reduction: float = 0.2,
    min_cdf_dominance: float = 0.7,
    throughput_slack: float = 0.05,
) -> ShapeCheck:
    """Evaluate the paper's qualitative claims on a comparison result.

    Parameters
    ----------
    comparison:
        Output of :func:`repro.experiments.runner.run_comparison`.
    min_fct_reduction:
        Minimum fractional mean-FCT reduction demanded of SCDA (paper ≈ 0.5;
        the default of 0.2 leaves room for scaled-down scenarios).
    min_cdf_dominance:
        Minimum fraction of the FCT range on which SCDA's CDF must lie above
        RandTCP's.
    throughput_slack:
        SCDA's average instantaneous throughput may be at most this fraction
        below RandTCP's and still count as "not worse".
    """
    fct_reduction = comparison.fct_reduction_fraction()
    throughput_gain = comparison.throughput_gain_fraction()
    dominance = comparison.cdf_dominance()

    return ShapeCheck(
        scenario=comparison.scenario,
        fct_improved=bool(np.isfinite(fct_reduction) and fct_reduction >= min_fct_reduction),
        fct_reduction_fraction=float(fct_reduction),
        throughput_not_worse=bool(
            np.isfinite(throughput_gain) and throughput_gain >= -throughput_slack
        ),
        throughput_gain_fraction=float(throughput_gain),
        cdf_mostly_dominates=bool(np.isfinite(dominance) and dominance >= min_cdf_dominance),
        cdf_dominance=float(dominance),
        details=comparison.summary(),
    )


def afct_fluctuation_ratio(
    comparison: ComparisonResult,
    max_size_bytes: float,
    num_bins: int = 10,
) -> float:
    """RandTCP's AFCT-curve coefficient of variation divided by SCDA's.

    Values above 1 mean the baseline's AFCT curve fluctuates more across
    file-size bins than SCDA's, which is the "wild fluctuations" observation
    of Section X.  Returns NaN when either curve has fewer than two bins.
    """
    edges = size_bin_edges(1.0, max_size_bytes, num_bins)

    def cov(result) -> float:
        _centers, afct, counts = result.afct_curve(edges)
        valid = np.isfinite(afct) & (counts > 0)
        values = afct[valid]
        if values.size < 2 or values.mean() <= 0:
            return float("nan")
        return float(values.std() / values.mean())

    baseline_cov = cov(comparison.baseline)
    candidate_cov = cov(comparison.candidate)
    if not np.isfinite(baseline_cov) or not np.isfinite(candidate_cov) or candidate_cov <= 0:
        return float("nan")
    return baseline_cov / candidate_cov
