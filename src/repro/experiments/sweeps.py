"""Parameter sweeps: how the SCDA-vs-RandTCP gap changes with load and scale.

The paper reports single operating points per figure; these sweeps extend the
evaluation by varying

* the offered load (arrival rate) — showing where the schemes' FCTs diverge
  and that there is no crossover where RandTCP becomes preferable, and
* the control interval τ — complementing the step-response analysis in
  :mod:`repro.analysis.convergence`.

Each sweep reuses the experiment runner, so every point is a full
simulation of both schemes on an identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import SchemeLike, resolve_scheme, run_comparison
from repro.experiments.spec import ScenarioSpec, as_spec


@dataclass
class SweepPoint:
    """One operating point of a sweep."""

    parameter: float
    candidate_mean_fct_s: float
    baseline_mean_fct_s: float
    speedup: float
    cdf_dominance: float

    @property
    def candidate_wins(self) -> bool:
        return self.speedup > 1.0


@dataclass
class SweepResult:
    """An ordered collection of sweep points."""

    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def parameters(self) -> List[float]:
        return [p.parameter for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def crossover_points(self) -> List[float]:
        """Parameter values at which the baseline would win (none expected)."""
        return [p.parameter for p in self.points if not p.candidate_wins]

    def as_table(self) -> str:
        lines = [f"{self.parameter_name:>14s}  {'SCDA FCT':>10s}  {'RandTCP FCT':>12s}  {'speedup':>8s}"]
        for p in self.points:
            lines.append(
                f"{p.parameter:>14.4g}  {p.candidate_mean_fct_s:>10.3f}  "
                f"{p.baseline_mean_fct_s:>12.3f}  {p.speedup:>8.2f}"
            )
        return "\n".join(lines)


def _with_arrival_rate(spec: ScenarioSpec, rate: float) -> ScenarioSpec:
    """Override the workload's arrival rate, whatever its config calls it."""
    from dataclasses import fields as dataclass_fields

    from repro.registry import WORKLOADS

    entry = WORKLOADS.get(spec.workload)
    field_names = (
        {f.name for f in dataclass_fields(entry.config_cls)}
        if entry.config_cls is not None
        else set()
    )
    for candidate_field in ("arrival_rate_per_s", "video_arrival_rate_per_s"):
        if candidate_field in field_names:
            return spec.with_overrides(
                workload_params={**spec.workload_params, candidate_field: float(rate)}
            )
    raise ValueError(
        f"workload {spec.workload!r} has no arrival-rate parameter to sweep "
        f"(config {entry.config_cls.__name__ if entry.config_cls else None!r})"
    )


def _base_spec(
    base: Optional[ScenarioSpec],
    sim_time: Optional[float],
    seed: Optional[int],
    topology: Optional[str],
) -> ScenarioSpec:
    """The spec each sweep point is derived from.

    Defaults to the paper's Pareto/Poisson scenario; ``base`` substitutes any
    registered scenario and ``topology`` swaps the fabric by registry key
    (resetting the topology parameters to that fabric's defaults).  Explicit
    ``sim_time``/``seed`` arguments override the base spec's values; left at
    ``None`` they keep the base's (or the paper defaults, 6 s / seed 1).
    """
    if base is not None:
        spec = as_spec(base)
        if sim_time is not None:
            spec = spec.with_sim_time(float(sim_time))
        if seed is not None:
            spec = spec.with_overrides(seed=int(seed))
    else:
        spec = ScenarioConfig.pareto_poisson(
            sim_time=6.0 if sim_time is None else float(sim_time),
            seed=1 if seed is None else int(seed),
        ).to_spec()
    if topology is not None:
        spec = spec.with_topology(topology)
    return spec


def sweep_offered_load(
    arrival_rates_per_s: Sequence[float],
    sim_time: Optional[float] = None,
    seed: Optional[int] = None,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    base: Optional[ScenarioSpec] = None,
    topology: Optional[str] = None,
) -> SweepResult:
    """Sweep the workload arrival rate and compare the schemes at each point.

    The schemes are registry keys (or :class:`SchemeSpec` objects) and the
    scenario is a :class:`ScenarioSpec`, so the sweep runs on any registered
    (topology, workload, scheme) combination — e.g.
    ``sweep_offered_load([20, 40], topology="fattree")``.
    """
    if not arrival_rates_per_s:
        raise ValueError("need at least one arrival rate")
    candidate = resolve_scheme(candidate)
    baseline = resolve_scheme(baseline)
    spec = _base_spec(base, sim_time, seed, topology)
    result = SweepResult(parameter_name="arrival rate (flows/s)")
    for rate in arrival_rates_per_s:
        if rate <= 0:
            raise ValueError("arrival rates must be positive")
        point = _with_arrival_rate(spec, float(rate))
        comparison = run_comparison(point, candidate=candidate, baseline=baseline)
        result.points.append(
            SweepPoint(
                parameter=float(rate),
                candidate_mean_fct_s=comparison.candidate.mean_fct_s(),
                baseline_mean_fct_s=comparison.baseline.mean_fct_s(),
                speedup=comparison.speedup_afct(),
                cdf_dominance=comparison.cdf_dominance(),
            )
        )
    return result


def sweep_control_interval(
    control_intervals_s: Sequence[float],
    sim_time: Optional[float] = None,
    seed: Optional[int] = None,
    arrival_rate_per_s: Optional[float] = None,
    base: Optional[ScenarioSpec] = None,
    topology: Optional[str] = None,
) -> SweepResult:
    """Sweep τ for SCDA (the baseline is τ-independent and measured once).

    ``arrival_rate_per_s`` left at ``None`` keeps the base scenario's own
    rate (40/s for the default Pareto/Poisson scenario).
    """
    if not control_intervals_s:
        raise ValueError("need at least one control interval")
    spec = _base_spec(base, sim_time, seed, topology)
    if arrival_rate_per_s is None and base is None:
        arrival_rate_per_s = 40.0
    if arrival_rate_per_s is not None:
        spec = _with_arrival_rate(spec, float(arrival_rate_per_s))
    result = SweepResult(parameter_name="control interval (s)")
    for tau in control_intervals_s:
        if tau <= 0:
            raise ValueError("control intervals must be positive")
        comparison = run_comparison(spec.with_overrides(control_interval_s=float(tau)))
        result.points.append(
            SweepPoint(
                parameter=float(tau),
                candidate_mean_fct_s=comparison.candidate.mean_fct_s(),
                baseline_mean_fct_s=comparison.baseline.mean_fct_s(),
                speedup=comparison.speedup_afct(),
                cdf_dominance=comparison.cdf_dominance(),
            )
        )
    return result
