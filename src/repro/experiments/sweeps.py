"""Parameter sweeps: how the SCDA-vs-RandTCP gap changes with load and scale.

The paper reports single operating points per figure; these sweeps extend the
evaluation by varying

* the offered load (arrival rate) — showing where the schemes' FCTs diverge
  and that there is no crossover where RandTCP becomes preferable, and
* the control interval τ — complementing the step-response analysis in
  :mod:`repro.analysis.convergence`.

Every sweep is planned into :class:`~repro.exec.job.ExperimentJob` s
(:mod:`repro.exec.planner`) and executed through a pluggable backend
(:mod:`repro.exec.executors`), so the points of a sweep run serially, on a
thread pool, or on a process pool — with bit-identical numbers — and can be
cached/resumed through a :class:`~repro.exec.store.ResultStore`::

    sweep_offered_load([15, 40, 80], executor="process", max_workers=4,
                       store="results/load_sweep.jsonl")

Re-running against the same store recomputes nothing and only fills in
missing points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.runner import SchemeLike
from repro.experiments.spec import ScenarioSpec, as_spec
from repro.metrics.comparison import ComparisonResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at call time otherwise: repro.exec builds on the
    # experiments layer, so a module-level import here would be circular.
    from repro.exec.executors import Executor, ProgressCallback
    from repro.exec.job import ExperimentJob
    from repro.exec.store import ResultStore

#: Arrival rate pinned by τ sweeps of the *default* scenario (flows/s) —
#: shared with the CLI's ``sweep tau`` so both surfaces plan identical jobs.
DEFAULT_TAU_SWEEP_ARRIVAL_RATE = 40.0


@dataclass
class SweepPoint:
    """One operating point of a sweep."""

    parameter: float
    candidate_mean_fct_s: float
    baseline_mean_fct_s: float
    speedup: float
    cdf_dominance: float

    @property
    def candidate_wins(self) -> bool:
        return self.speedup > 1.0

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict of this point."""
        return {
            "parameter": float(self.parameter),
            "candidate_mean_fct_s": float(self.candidate_mean_fct_s),
            "baseline_mean_fct_s": float(self.baseline_mean_fct_s),
            "speedup": float(self.speedup),
            "cdf_dominance": float(self.cdf_dominance),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output (lossless)."""
        return cls(**dict(data))


@dataclass
class SweepResult:
    """An ordered collection of sweep points."""

    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def parameters(self) -> List[float]:
        return [p.parameter for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def crossover_points(self) -> List[float]:
        """Parameter values at which the baseline would win (none expected)."""
        return [p.parameter for p in self.points if not p.candidate_wins]

    def as_table(self) -> str:
        lines = [f"{self.parameter_name:>14s}  {'SCDA FCT':>10s}  {'RandTCP FCT':>12s}  {'speedup':>8s}"]
        for p in self.points:
            lines.append(
                f"{p.parameter:>14.4g}  {p.candidate_mean_fct_s:>10.3f}  "
                f"{p.baseline_mean_fct_s:>12.3f}  {p.speedup:>8.2f}"
            )
        return "\n".join(lines)

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; round-trips via :meth:`from_dict`."""
        return {
            "parameter_name": self.parameter_name,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output (lossless)."""
        return cls(
            parameter_name=str(data["parameter_name"]),
            points=[SweepPoint.from_dict(p) for p in data.get("points", ())],
        )


def _base_spec(
    base: Optional[ScenarioSpec],
    sim_time: Optional[float],
    seed: Optional[int],
    topology: Optional[str],
) -> ScenarioSpec:
    """The spec each sweep point is derived from.

    Defaults to the paper's Pareto/Poisson scenario
    (:meth:`ScenarioSpec.pareto_poisson`); ``base`` substitutes any scenario
    and ``topology`` swaps the fabric by registry key (resetting the topology
    parameters to that fabric's defaults).  Explicit ``sim_time``/``seed``
    arguments override the base spec's values; left at ``None`` they keep the
    base's (or the paper defaults, 6 s / seed 1).
    """
    if base is not None:
        spec = as_spec(base)
        if sim_time is not None:
            spec = spec.with_sim_time(float(sim_time))
        if seed is not None:
            spec = spec.with_overrides(seed=int(seed))
    else:
        spec = ScenarioSpec.pareto_poisson(
            sim_time_s=6.0 if sim_time is None else float(sim_time),
            seed=1 if seed is None else int(seed),
        )
    if topology is not None:
        spec = spec.with_topology(topology)
    return spec


def points_from_jobs(
    jobs: Sequence["ExperimentJob"],
    results,
    parameter_name: str,
) -> List[SweepPoint]:
    """Fold the flat (job, result) map back into ordered sweep points.

    Jobs carry their sweep parameter and candidate/baseline role as tags
    (see :mod:`repro.exec.planner`); points are emitted in first-appearance
    order of the parameter, which is the order the planner received them in.
    This is the assembly step for callers that plan and execute jobs
    themselves (the CLI's ``sweep`` command does) instead of going through
    :func:`sweep_offered_load` / :func:`sweep_control_interval`.
    """
    by_parameter: Dict[float, Dict[str, ExperimentJob]] = {}
    order: List[float] = []
    for job in jobs:
        parameter = job.tags.get("parameter")
        if parameter is None:
            continue
        parameter = float(parameter)
        if parameter not in by_parameter:
            by_parameter[parameter] = {}
            order.append(parameter)
        by_parameter[parameter][str(job.tags.get("role"))] = job
    points: List[SweepPoint] = []
    for parameter in order:
        roles = by_parameter[parameter]
        comparison = ComparisonResult(
            scenario=f"{parameter_name}={parameter:g}",
            candidate=results[roles["candidate"].key],
            baseline=results[roles["baseline"].key],
        )
        points.append(
            SweepPoint(
                parameter=parameter,
                candidate_mean_fct_s=comparison.candidate.mean_fct_s(),
                baseline_mean_fct_s=comparison.baseline.mean_fct_s(),
                speedup=comparison.speedup_afct(),
                cdf_dominance=comparison.cdf_dominance(),
            )
        )
    return points


def sweep_offered_load(
    arrival_rates_per_s: Sequence[float],
    sim_time: Optional[float] = None,
    seed: Optional[int] = None,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    base: Optional[ScenarioSpec] = None,
    topology: Optional[str] = None,
    executor: Union[str, Executor] = "serial",
    max_workers: Optional[int] = None,
    store: Optional[Union[str, ResultStore]] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Sweep the workload arrival rate and compare the schemes at each point.

    The schemes are registry keys (or :class:`SchemeSpec` objects) and the
    scenario is a :class:`ScenarioSpec`, so the sweep runs on any registered
    (topology, workload, scheme) combination — e.g.
    ``sweep_offered_load([20, 40], topology="fattree")``.  ``executor``,
    ``max_workers`` and ``store`` select the backend and enable
    caching/resume; every backend produces bit-identical points.
    """
    from repro.exec.executors import run_jobs
    from repro.exec.planner import plan_offered_load_sweep

    spec = _base_spec(base, sim_time, seed, topology)
    jobs = plan_offered_load_sweep(
        arrival_rates_per_s, base=spec, candidate=candidate, baseline=baseline
    )
    report = run_jobs(
        jobs, executor=executor, max_workers=max_workers, store=store, progress=progress
    )
    return SweepResult(
        parameter_name="arrival rate (flows/s)",
        points=points_from_jobs(jobs, report.results, "rate"),
    )


def sweep_control_interval(
    control_intervals_s: Sequence[float],
    sim_time: Optional[float] = None,
    seed: Optional[int] = None,
    arrival_rate_per_s: Optional[float] = None,
    base: Optional[ScenarioSpec] = None,
    topology: Optional[str] = None,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    executor: Union[str, Executor] = "serial",
    max_workers: Optional[int] = None,
    store: Optional[Union[str, ResultStore]] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Sweep τ and compare the schemes at each control interval.

    ``arrival_rate_per_s`` left at ``None`` keeps the base scenario's own
    rate (40/s for the default Pareto/Poisson scenario).
    """
    from repro.exec.executors import run_jobs
    from repro.exec.planner import plan_control_interval_sweep, with_arrival_rate

    spec = _base_spec(base, sim_time, seed, topology)
    if arrival_rate_per_s is None and base is None:
        arrival_rate_per_s = DEFAULT_TAU_SWEEP_ARRIVAL_RATE
    if arrival_rate_per_s is not None:
        spec = with_arrival_rate(spec, float(arrival_rate_per_s))
    jobs = plan_control_interval_sweep(
        control_intervals_s, base=spec, candidate=candidate, baseline=baseline
    )
    report = run_jobs(
        jobs, executor=executor, max_workers=max_workers, store=store, progress=progress
    )
    return SweepResult(
        parameter_name="control interval (s)",
        points=points_from_jobs(jobs, report.results, "tau"),
    )
