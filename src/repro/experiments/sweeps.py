"""Parameter sweeps: how the SCDA-vs-RandTCP gap changes with load and scale.

The paper reports single operating points per figure; these sweeps extend the
evaluation by varying

* the offered load (arrival rate) — showing where the schemes' FCTs diverge
  and that there is no crossover where RandTCP becomes preferable, and
* the control interval τ — complementing the step-response analysis in
  :mod:`repro.analysis.convergence`.

Each sweep reuses the experiment runner, so every point is a full
simulation of both schemes on an identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME, SchemeSpec
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison


@dataclass
class SweepPoint:
    """One operating point of a sweep."""

    parameter: float
    candidate_mean_fct_s: float
    baseline_mean_fct_s: float
    speedup: float
    cdf_dominance: float

    @property
    def candidate_wins(self) -> bool:
        return self.speedup > 1.0


@dataclass
class SweepResult:
    """An ordered collection of sweep points."""

    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def parameters(self) -> List[float]:
        return [p.parameter for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def crossover_points(self) -> List[float]:
        """Parameter values at which the baseline would win (none expected)."""
        return [p.parameter for p in self.points if not p.candidate_wins]

    def as_table(self) -> str:
        lines = [f"{self.parameter_name:>14s}  {'SCDA FCT':>10s}  {'RandTCP FCT':>12s}  {'speedup':>8s}"]
        for p in self.points:
            lines.append(
                f"{p.parameter:>14.4g}  {p.candidate_mean_fct_s:>10.3f}  "
                f"{p.baseline_mean_fct_s:>12.3f}  {p.speedup:>8.2f}"
            )
        return "\n".join(lines)


def sweep_offered_load(
    arrival_rates_per_s: Sequence[float],
    sim_time: float = 6.0,
    seed: int = 1,
    candidate: SchemeSpec = SCDA_SCHEME,
    baseline: SchemeSpec = RAND_TCP,
) -> SweepResult:
    """Sweep the Pareto/Poisson arrival rate and compare the schemes at each point."""
    if not arrival_rates_per_s:
        raise ValueError("need at least one arrival rate")
    result = SweepResult(parameter_name="arrival rate (flows/s)")
    for rate in arrival_rates_per_s:
        if rate <= 0:
            raise ValueError("arrival rates must be positive")
        config = ScenarioConfig.pareto_poisson(
            sim_time=sim_time, seed=seed, arrival_rate_per_s=float(rate)
        )
        comparison = run_comparison(config, candidate=candidate, baseline=baseline)
        result.points.append(
            SweepPoint(
                parameter=float(rate),
                candidate_mean_fct_s=comparison.candidate.mean_fct_s(),
                baseline_mean_fct_s=comparison.baseline.mean_fct_s(),
                speedup=comparison.speedup_afct(),
                cdf_dominance=comparison.cdf_dominance(),
            )
        )
    return result


def sweep_control_interval(
    control_intervals_s: Sequence[float],
    sim_time: float = 6.0,
    seed: int = 1,
    arrival_rate_per_s: float = 40.0,
) -> SweepResult:
    """Sweep τ for SCDA (the baseline is τ-independent and measured once)."""
    if not control_intervals_s:
        raise ValueError("need at least one control interval")
    result = SweepResult(parameter_name="control interval (s)")
    for tau in control_intervals_s:
        if tau <= 0:
            raise ValueError("control intervals must be positive")
        config = ScenarioConfig.pareto_poisson(
            sim_time=sim_time, seed=seed, arrival_rate_per_s=arrival_rate_per_s
        ).with_overrides(control_interval_s=float(tau))
        comparison = run_comparison(config)
        result.points.append(
            SweepPoint(
                parameter=float(tau),
                candidate_mean_fct_s=comparison.candidate.mean_fct_s(),
                baseline_mean_fct_s=comparison.baseline.mean_fct_s(),
                speedup=comparison.speedup_afct(),
                cdf_dominance=comparison.cdf_dominance(),
            )
        )
    return result
