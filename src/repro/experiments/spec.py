"""Declarative, serialisable experiment scenarios.

:class:`ScenarioSpec` is the registry-driven successor of
:class:`~repro.experiments.config.ScenarioConfig`: every axis of the
evaluation cross-product is a *string key* resolved through
:mod:`repro.registry` plus a plain dict of typed parameters, so a complete
experiment is one JSON document::

    {
      "name": "fattree-dc",
      "seed": 7,
      "sim_time_s": 10.0,
      "topology": "fattree",
      "topology_params": {"k": 4, "num_clients": 4},
      "workload": "datacenter",
      "workload_params": {"arrival_rate_per_s": 30.0}
    }

``ScenarioSpec.from_json`` / ``to_json`` round-trip losslessly, which makes
experiment files reproducible artefacts: check the JSON into a repo, run it
with ``python -m repro run scenario.json``, get the same numbers.

The spec builds its pieces through the registries
(:data:`~repro.registry.TOPOLOGIES`, :data:`~repro.registry.WORKLOADS`), so
a topology or workload registered by third-party code is immediately usable
here, in the sweeps and from the CLI.  See ``docs/SCENARIOS.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.rate_metric import ScdaParams
from repro.registry import RegistryError, TOPOLOGIES, WORKLOADS, _normalise


#: The paper's Pareto/Poisson scenario constants (Section X-B, Figures
#: 17-18) — the single source both :meth:`ScenarioSpec.pareto_poisson` and
#: :meth:`repro.experiments.config.ScenarioConfig.pareto_poisson` build
#: from, so the two factories cannot drift apart.
PARETO_POISSON_TREE_PARAMS: Dict[str, Any] = {
    "base_bandwidth_bps": 200e6,
    "bandwidth_factor": 3.0,
    "num_agg": 2,
    "racks_per_agg": 2,
    "hosts_per_rack": 5,
    "num_clients": 8,
    "client_bandwidth_bps": 600e6,
}
PARETO_POISSON_WORKLOAD_PARAMS: Dict[str, Any] = {
    "mean_size_bytes": 500 * 1024.0,
    "pareto_shape": 1.6,
    "num_clients": 8,
}


def _jsonify(value: Any) -> Any:
    """Coerce ``value`` to the plain JSON type system (tuples become lists).

    Applied to the parameter dicts at construction time so that equality is
    preserved across a ``to_dict -> json -> from_dict`` round-trip.
    """
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return value
    # numpy scalars and other number-likes
    for cast in (int, float):
        try:
            if cast(value) == value:
                return cast(value)
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass
class ScenarioSpec:
    """A complete experiment scenario, declaratively.

    Attributes
    ----------
    topology / topology_params:
        Registry key and parameters of the fabric
        (:data:`repro.registry.TOPOLOGIES`).
    workload / workload_params:
        Registry key and parameters of the trace generator
        (:data:`repro.registry.WORKLOADS`).  When the generator's config has
        a ``duration_s`` field and the params leave it unset, it defaults to
        ``sim_time_s``.
    scda_params:
        Overrides for :class:`~repro.core.rate_metric.ScdaParams`
        (``alpha``, ``beta``, ``drain_time_s``, ``min_rate_bps``, ...).
    hedera_params:
        Overrides for :class:`~repro.baselines.hedera.HederaConfig`
        (``elephant_threshold_bytes``, ``scheduling_interval_s``), used by
        schemes with ``use_hedera`` set.
    dynamics:
        A list of timed world-mutation events in their plain-dict form
        (``{"kind": "link-failure", "at_s": 1.0, ...}``; see
        :mod:`repro.dynamics`).  Empty means the historical static world.
        The list is part of the spec's serialised form, so it flows through
        :class:`~repro.exec.job.ExperimentJob` content keys, planners,
        every executor backend and the result store losslessly.
    """

    name: str = "scenario"
    seed: int = 1
    sim_time_s: float = 10.0
    #: extra time after the last arrival to let in-flight flows finish
    drain_time_s: float = 30.0
    topology: str = "tree"
    topology_params: Dict[str, Any] = field(default_factory=dict)
    workload: str = "pareto-poisson"
    workload_params: Dict[str, Any] = field(default_factory=dict)
    scda_params: Dict[str, Any] = field(default_factory=dict)
    hedera_params: Dict[str, Any] = field(default_factory=dict)
    #: timed world-mutation events (see :mod:`repro.dynamics`); empty = static
    dynamics: List[Dict[str, Any]] = field(default_factory=list)
    control_interval_s: float = 0.010
    setup_rtts: float = 1.5
    replication_enabled: bool = True
    #: name-node servers behind the FES (the paper's multi-NNS metadata plane)
    num_name_nodes: int = 3
    throughput_sample_interval_s: float = 1.0
    #: scale-down threshold R_scale used by the passive-content policy
    scale_down_threshold_bps: float = 50e6

    def __post_init__(self) -> None:
        if self.sim_time_s <= 0:
            raise ValueError("sim_time_s must be positive")
        if self.drain_time_s < 0:
            raise ValueError("drain_time_s must be non-negative")
        if self.control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if self.throughput_sample_interval_s <= 0:
            raise ValueError("throughput_sample_interval_s must be positive")
        if self.num_name_nodes < 1:
            raise ValueError("num_name_nodes must be >= 1")
        self.topology = _normalise(self.topology)
        self.workload = _normalise(self.workload)
        self.topology_params = _jsonify(dict(self.topology_params))
        self.workload_params = _jsonify(dict(self.workload_params))
        self.scda_params = _jsonify(dict(self.scda_params))
        self.hedera_params = _jsonify(dict(self.hedera_params))
        if isinstance(self.dynamics, Mapping) or isinstance(self.dynamics, str):
            raise ValueError("dynamics must be a list of event dicts")
        self.dynamics = _jsonify(list(self.dynamics))
        for item in self.dynamics:
            if not isinstance(item, Mapping) or "kind" not in item:
                raise ValueError(
                    f"each dynamics event must be a dict with a 'kind', got {item!r}"
                )

    # -- paper scenarios ---------------------------------------------------------------
    @classmethod
    def pareto_poisson(
        cls,
        sim_time_s: float = 6.0,
        seed: int = 1,
        arrival_rate_per_s: float = 60.0,
    ) -> "ScenarioSpec":
        """The paper's Pareto/Poisson scenario as a pure spec (Figures 17-18).

        Declarative twin of
        :meth:`repro.experiments.config.ScenarioConfig.pareto_poisson` —
        bit-identical to ``ScenarioConfig.pareto_poisson(...).to_spec()``
        (a test pins the equality) but with no dependency on the legacy
        config layer, so the sweeps and the execution planner can default to
        it without importing :mod:`repro.experiments.config`.
        """
        from dataclasses import asdict

        from repro.network.tree import TreeTopologyConfig
        from repro.workloads.pareto_poisson import ParetoPoissonConfig

        topology = TreeTopologyConfig(**PARETO_POISSON_TREE_PARAMS)
        pareto = ParetoPoissonConfig(
            duration_s=float(sim_time_s),
            arrival_rate_per_s=float(arrival_rate_per_s),
            **PARETO_POISSON_WORKLOAD_PARAMS,
        )
        # τ lives on the spec itself, never inside scda_params.
        scda = asdict(ScdaParams())
        scda.pop("control_interval_s", None)
        return cls(
            name="pareto-poisson",
            seed=int(seed),
            sim_time_s=float(sim_time_s),
            topology="tree",
            topology_params=asdict(topology),
            workload="pareto-poisson",
            workload_params=asdict(pareto),
            scda_params=scda,
        )

    # -- derived -----------------------------------------------------------------------
    @property
    def total_time_s(self) -> float:
        """Simulated horizon including the drain period."""
        return self.sim_time_s + self.drain_time_s

    def with_overrides(self, **kwargs: Any) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **kwargs)

    def with_topology(self, key: str, **params: Any) -> "ScenarioSpec":
        """Swap the fabric by registry key, resetting the topology params.

        Pass keyword arguments to set specific parameters of the new
        fabric's config; anything unset uses that fabric's defaults.
        """
        return self.with_overrides(topology=key, topology_params=dict(params))

    def with_workload(self, key: str, **params: Any) -> "ScenarioSpec":
        """Swap the workload by registry key, resetting the workload params."""
        return self.with_overrides(workload=key, workload_params=dict(params))

    def with_sim_time(self, sim_time_s: float) -> "ScenarioSpec":
        """Change the simulated duration, keeping the workload in sync.

        Unlike a bare ``with_overrides(sim_time_s=...)``, this also rewrites
        a ``duration_s`` already baked into :attr:`workload_params` (as
        :meth:`~repro.experiments.config.ScenarioConfig.to_spec` does), so
        the generated workload actually spans the new horizon.
        """
        params = dict(self.workload_params)
        if "duration_s" in params:
            params["duration_s"] = float(sim_time_s)
        return self.with_overrides(sim_time_s=float(sim_time_s), workload_params=params)

    # -- registry-backed builders ------------------------------------------------------
    def build_topology(self):
        """Instantiate the fabric named by :attr:`topology`."""
        entry = TOPOLOGIES.get(self.topology)
        config = entry.make_config(self.topology_params)
        return entry.builder(config)

    def build_workload(self):
        """Generate the workload named by :attr:`workload` (keyed by the seed)."""
        entry = WORKLOADS.get(self.workload)
        params = dict(self.workload_params)
        if entry.config_cls is not None and "duration_s" not in params:
            if any(f.name == "duration_s" for f in dataclass_fields(entry.config_cls)):
                params["duration_s"] = self.sim_time_s
        config = entry.make_config(params)
        return entry.builder(config, seed=self.seed)

    def build_scda_params(self) -> ScdaParams:
        """The SCDA rate-metric constants, with the spec's control interval."""
        params = dict(self.scda_params)
        if "control_interval_s" in params:
            # The fabric's allocation rounds use the spec-level value; a
            # second copy here would silently desynchronise the two planes.
            raise RegistryError(
                "set the control interval via ScenarioSpec.control_interval_s, "
                "not scda_params['control_interval_s']"
            )
        params["control_interval_s"] = self.control_interval_s
        try:
            return ScdaParams(**params)
        except (TypeError, ValueError) as exc:
            valid = sorted(f.name for f in dataclass_fields(ScdaParams))
            raise RegistryError(
                f"invalid scda_params: {exc}; valid fields: {valid}"
            ) from exc

    def build_dynamics(self):
        """The :class:`~repro.dynamics.DynamicsScript` named by :attr:`dynamics`.

        Events resolve through the :data:`~repro.registry.DYNAMICS` registry
        (unknown kinds and bad parameters fail with the valid names).  An
        empty list builds a no-op script: the historical static world.
        """
        from repro.dynamics import DynamicsScript

        return DynamicsScript.from_list(self.dynamics)

    def with_dynamics(self, events) -> "ScenarioSpec":
        """A copy of this spec with the dynamics script replaced.

        Accepts a :class:`~repro.dynamics.DynamicsScript`, a list of event
        objects, or a list of plain event dicts.
        """
        from repro.dynamics import DynamicsEvent, DynamicsScript
        from repro.dynamics.script import event_to_dict

        if isinstance(events, DynamicsScript):
            payload = events.to_list()
        else:
            payload = [
                event_to_dict(e) if isinstance(e, DynamicsEvent) else dict(e)
                for e in events
            ]
        return self.with_overrides(dynamics=payload)

    def build_hedera_config(self):
        """The Hedera scheduler config for schemes with ``use_hedera`` set.

        Defaults to an 8 MB elephant threshold and a 1 s scheduling interval
        (the laptop-scale settings of the shipped examples; the NSDI paper
        discusses 100 MB), overridable through :attr:`hedera_params`.
        """
        from repro.baselines.hedera import HederaConfig

        params = {
            "elephant_threshold_bytes": 8 * 1024.0 * 1024.0,
            "scheduling_interval_s": 1.0,
            **self.hedera_params,
        }
        try:
            return HederaConfig(**params)
        except (TypeError, ValueError) as exc:
            valid = sorted(f.name for f in dataclass_fields(HederaConfig))
            raise RegistryError(
                f"invalid hedera_params: {exc}; valid fields: {valid}"
            ) from exc

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-safe dict holding every field of the spec."""
        return {
            f.name: _jsonify(getattr(self, f.name)) for f in dataclass_fields(self)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        valid = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec field(s) {unknown}; valid fields: {sorted(valid)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from :meth:`to_json` output."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a scenario file must hold a JSON object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec to ``path`` as JSON; returns the path."""
        out = Path(path)
        out.write_text(self.to_json() + "\n")
        return out

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Read a spec from a JSON file produced by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def as_spec(obj: Any) -> ScenarioSpec:
    """Coerce a scenario-like object to a :class:`ScenarioSpec`.

    Accepts a spec (returned as-is), anything exposing ``to_spec()``
    (:class:`~repro.experiments.config.ScenarioConfig`), or a mapping in
    :meth:`ScenarioSpec.to_dict` form.
    """
    if isinstance(obj, ScenarioSpec):
        return obj
    to_spec = getattr(obj, "to_spec", None)
    if callable(to_spec):
        return to_spec()
    if isinstance(obj, Mapping):
        return ScenarioSpec.from_dict(obj)
    raise TypeError(
        f"cannot interpret {type(obj).__name__!r} as a scenario; "
        "pass a ScenarioSpec, a ScenarioConfig, or a spec dict"
    )
