"""Result reporting: registry-driven store analyses + benchmark tables.

Two report pipelines live here:

* **Store reports** — the replication layer's path.  A
  :class:`~repro.exec.store.ResultStore` JSONL is the single source of
  truth; :func:`run_analysis` runs one plugin from the
  :data:`~repro.registry.ANALYSES` registry over it and
  :func:`store_report` composes several into one artifact document
  (``repro report --results store.jsonl --analysis scheme-comparison``).
  Analyses are pure functions of the store, so a report re-renders without
  re-running a single simulation.
* **Benchmark tables** — the historical path.  The benchmark harness drops
  one JSON file per figure/ablation under ``benchmarks/results``;
  :class:`BenchmarkReport` loads them and renders a markdown table of the
  headline numbers (the same numbers EXPERIMENTS.md quotes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union


# ------------------------------------------------------------------------------------------
# Store reports: compose ANALYSES plugins over a ResultStore
# ------------------------------------------------------------------------------------------
def run_analysis(store, name: str, **params: Any) -> Dict[str, Any]:
    """Run one registered analysis over a result store.

    ``store`` is a :class:`~repro.exec.store.ResultStore` or its path;
    ``name`` resolves through the :data:`~repro.registry.ANALYSES` registry
    (unknown names fail with the registered ones listed).  Returns the
    analysis's JSON-serialisable artifact.
    """
    from repro.registry import ANALYSES

    return ANALYSES.build(name, store, **params)


def store_report(
    store,
    analyses: Optional[Sequence[str]] = None,
    params: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    """Compose several analyses over one store into a single document.

    ``analyses`` defaults to every registered analysis; ``params`` maps an
    analysis name to its keyword arguments.  The result is
    ``{"store": <path>, "entries": N, "analyses": {name: artifact}}`` and
    round-trips through JSON unchanged.
    """
    from repro.exec.store import ResultStore
    from repro.registry import ANALYSES

    store = store if isinstance(store, ResultStore) else ResultStore(store)
    names = list(analyses) if analyses is not None else ANALYSES.names()
    params = dict(params or {})
    return {
        "store": str(store.path),
        "entries": len(store),
        "analyses": {
            name: run_analysis(store, name, **dict(params.get(name, {})))
            for name in names
        },
    }


def render_store_report_markdown(report: Mapping[str, Any]) -> str:
    """A human-readable markdown rendering of a :func:`store_report` document.

    The scheme-comparison section becomes a mean ± CI table; every other
    artifact is embedded as pretty-printed JSON (artifacts are the machine
    interface — this rendering is a convenience, not the contract).
    """
    lines = [
        "# Result-store report",
        "",
        f"Store: `{report.get('store', '?')}` ({report.get('entries', '?')} entries)",
    ]
    analyses = dict(report.get("analyses", {}))
    comparison = analyses.pop("scheme-comparison", None)
    if comparison:
        lines += ["", "## Scheme comparison (mean ± 95% CI)", ""]
        for label, block in comparison.get("ensembles", {}).items():
            lines.append(f"### {label}")
            lines.append("")
            lines.append("| scheme | replicates | mean FCT (s) | goodput (KB/s) | availability |")
            lines.append("|---|---|---|---|---|")
            for scheme_key, stats in block.get("schemes", {}).items():
                def cell(metric: str) -> str:
                    from repro.metrics.stats import SummaryStats

                    payload = SummaryStats.from_dict(stats[metric])
                    if payload.n <= 1:
                        return f"{payload.mean:.4g}"
                    return f"{payload.mean:.4g} ± {payload.half_width:.2g}"

                lines.append(
                    f"| {stats['scheme']} | {stats['replicates']} "
                    f"| {cell('mean_fct_s')} | {cell('mean_goodput_kBps')} "
                    f"| {cell('mean_availability')} |"
                )
            summary = block.get("comparison", {}).get("summary", {})
            if summary:
                speedup = summary.get("speedup_afct", {})
                if speedup:
                    lines.append("")
                    lines.append(
                        f"AFCT speedup: {speedup['mean']:.3g} "
                        f"[{speedup['ci_lower']:.3g}, {speedup['ci_upper']:.3g}] "
                        f"(n={speedup['n']}, {speedup['method']})"
                    )
            lines.append("")
    for name, artifact in analyses.items():
        lines += [f"## {name}", "", "```json",
                  json.dumps(artifact, indent=2, sort_keys=True, default=float),
                  "```", ""]
    return "\n".join(lines)


# ------------------------------------------------------------------------------------------
# Benchmark tables: the benchmarks/results/*.json path
# ------------------------------------------------------------------------------------------
def load_benchmark_results(results_dir) -> Dict[str, dict]:
    """Load every ``*.json`` in ``results_dir`` keyed by its stem."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no benchmark results directory at {results_dir}")
    loaded: Dict[str, dict] = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            loaded[path.stem] = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt benchmark result {path}: {exc}") from exc
    return loaded


#: What the paper qualitatively claims per figure, quoted in the report.
PAPER_CLAIMS: Mapping[str, str] = {
    "fig07": "SCDA throughput above RandTCP (video + control)",
    "fig08": "most SCDA uploads finish much earlier",
    "fig09": "SCDA AFCT below RandTCP for 10-90 MB files",
    "fig10": "SCDA throughput above RandTCP (video only)",
    "fig11": "FCT >50% lower for most flows",
    "fig12": "SCDA AFCT below; RandTCP fluctuates wildly",
    "fig13": "AFCT up to 50% lower (DC traces, K=1)",
    "fig14": ">60% of flows up to 50% faster",
    "fig15": "AFCT up to 50% lower (DC traces, K=3)",
    "fig16": ">60% of flows up to 50% faster",
    "fig17": "SCDA throughput above RandTCP (Pareto/Poisson)",
    "fig18": "SCDA FCT CDF far to the left",
}


@dataclass
class BenchmarkReport:
    """A loaded set of benchmark results with markdown rendering."""

    results: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def from_directory(cls, results_dir) -> "BenchmarkReport":
        return cls(load_benchmark_results(results_dir))

    # -- queries --------------------------------------------------------------------------
    def figures(self) -> List[str]:
        """Names of the figure entries present (fig07..fig18, sorted)."""
        return sorted(name for name in self.results if name.startswith("fig"))

    def ablations(self) -> List[str]:
        """Names of the non-figure entries present."""
        return sorted(name for name in self.results if not name.startswith("fig"))

    def summary_of(self, name: str) -> dict:
        """The ``summary`` block of one result (empty dict if missing)."""
        return dict(self.results.get(name, {}).get("summary", {}))

    def all_shapes_passed(self) -> bool:
        """True when every figure entry that recorded a shape verdict passed."""
        verdicts = []
        for name in self.figures():
            shape = self.results[name].get("shape")
            if isinstance(shape, dict) and "all_passed" in shape:
                verdicts.append(bool(shape["all_passed"]))
            elif "all_passed" in self.results[name]:
                verdicts.append(bool(self.results[name]["all_passed"]))
        return all(verdicts) if verdicts else False

    # -- rendering --------------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Render the figure table plus an ablation section as markdown."""
        lines = [
            "# SCDA reproduction — benchmark report",
            "",
            "| Figure | Paper claim | SCDA mean FCT (s) | RandTCP mean FCT (s) | FCT reduction | CDF dominance |",
            "|---|---|---|---|---|---|",
        ]
        for name in self.figures():
            summary = self.summary_of(name)
            if not summary:
                continue
            claim = PAPER_CLAIMS.get(name, "")
            lines.append(
                "| {fig} | {claim} | {cand:.3f} | {base:.3f} | {red:.0%} | {dom:.0%} |".format(
                    fig=name,
                    claim=claim,
                    cand=summary.get("candidate_mean_fct_s", float("nan")),
                    base=summary.get("baseline_mean_fct_s", float("nan")),
                    red=summary.get("fct_reduction_fraction", float("nan")),
                    dom=summary.get("cdf_dominance", float("nan")),
                )
            )
        ablations = self.ablations()
        if ablations:
            lines.extend(["", "## Ablations", ""])
            for name in ablations:
                lines.append(f"### {name}")
                lines.append("```json")
                lines.append(json.dumps(self.results[name], indent=2, sort_keys=True))
                lines.append("```")
        return "\n".join(lines)

    def write_markdown(self, path) -> Path:
        """Write :meth:`to_markdown` to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_markdown())
        return path
