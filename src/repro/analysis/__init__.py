"""Analysis and reporting utilities.

* :mod:`~repro.analysis.ascii_plot` — dependency-free terminal plots of the
  figure series (the repository deliberately has no matplotlib dependency so
  it runs in minimal offline environments).
* :mod:`~repro.analysis.report` — compose :data:`~repro.registry.ANALYSES`
  plugins over a :class:`~repro.exec.store.ResultStore` into one report
  document, and turn the JSON files dropped by the benchmark harness
  (``benchmarks/results/*.json``) into a markdown report of
  paper-vs-measured numbers.
* :mod:`~repro.analysis.store_analyses` — the built-in store analyses
  (``scheme-comparison``, ``sweep-summary``, ``fct-cdf``,
  ``availability``), each a pure function from a store query to a
  serialisable artifact.  See ``docs/ANALYSIS.md``.
* :mod:`~repro.analysis.convergence` — step-response analysis of the SCDA
  rate metric: how many control intervals equation 2 needs to converge to the
  max-min rate after load changes.
"""

from repro.analysis.ascii_plot import ascii_line_plot, ascii_cdf_plot, render_figure
from repro.analysis.report import (
    BenchmarkReport,
    load_benchmark_results,
    render_store_report_markdown,
    run_analysis,
    store_report,
)
from repro.analysis.convergence import (
    ConvergenceResult,
    rate_metric_step_response,
    rounds_to_converge,
)

__all__ = [
    "ascii_line_plot",
    "ascii_cdf_plot",
    "render_figure",
    "BenchmarkReport",
    "load_benchmark_results",
    "run_analysis",
    "store_report",
    "render_store_report_markdown",
    "ConvergenceResult",
    "rate_metric_step_response",
    "rounds_to_converge",
]
