"""Terminal (ASCII) plots for figure series.

The experiment figures are (x, y) series per scheme; these helpers render
them as fixed-width character plots so results can be inspected over SSH or
in CI logs without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

#: characters used for successive series, in order
SERIES_MARKERS = "*o+x#@"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return int(round(position * (size - 1)))


def ascii_line_plot(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render one or more (x, y) series on a shared-axes character grid.

    Parameters
    ----------
    series:
        ``name -> (x values, y values)``.  Series are drawn in insertion
        order with the markers ``* o + x # @``.
    width, height:
        Plot area size in characters (excluding axes and labels).
    """
    if width < 16 or height < 4:
        raise ValueError("plot area must be at least 16x4 characters")
    cleaned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(list(xs), dtype=float)
        y = np.asarray(list(ys), dtype=float)
        mask = np.isfinite(x) & np.isfinite(y)
        if mask.any():
            cleaned[name] = (x[mask], y[mask])
    if not cleaned:
        return f"{title}\n(no data)"

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(min(all_y.min(), 0.0)), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (x, y)) in enumerate(cleaned.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        for xv, yv in zip(x, y):
            col = _scale(xv, x_lo, x_hi, width)
            row = height - 1 - _scale(yv, y_lo, y_hi, height)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]} {name}" for i, name in enumerate(cleaned)
    )
    lines.append(legend)
    lines.append(f"{y_hi:.3g} ".rjust(10) + "+" + "-" * width)
    for row_index, row in enumerate(grid):
        prefix = " " * 10
        if row_index == height - 1:
            prefix = f"{y_lo:.3g} ".rjust(10)
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 11 + f"{x_lo:.3g}".ljust(width - 12) + f"{x_hi:.3g}")
    lines.append(" " * 11 + f"{x_label}  (y: {y_label})")
    return "\n".join(lines)


def ascii_cdf_plot(
    samples: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 18,
    x_label: str = "value",
    title: str = "",
) -> str:
    """Render empirical CDFs of one or more sample sets."""
    from repro.metrics.cdf import empirical_cdf

    series = {}
    for name, values in samples.items():
        x, y = empirical_cdf(values)
        if x.size:
            series[name] = (x, y)
    return ascii_line_plot(
        series, width=width, height=height, x_label=x_label, y_label="CDF", title=title
    )


def render_figure(figure, width: int = 72, height: int = 18) -> str:
    """Render a :class:`repro.experiments.figures.FigureData` as an ASCII plot."""
    return ascii_line_plot(
        figure.series,
        width=width,
        height=height,
        x_label=figure.x_label,
        y_label=figure.y_label,
        title=f"{figure.figure_id}: {figure.title}",
    )
