"""Built-in analyses for the :data:`~repro.registry.ANALYSES` registry.

Imported lazily by :func:`repro.registry.load_builtin_plugins` the first
time any registry is read.  Third-party analyses register the same way::

    from repro.registry import ANALYSES

    @ANALYSES.register("tail-latency", description="p99 FCT per scheme")
    def analyze_tail_latency(store, ensemble=None):
        ...

after which ``repro report --results store.jsonl --analysis tail-latency``
and :func:`repro.analysis.report.run_analysis` pick it up.
"""

from repro.analysis.store_analyses import (
    analyze_availability,
    analyze_fct_cdf,
    analyze_scheme_comparison,
    analyze_sweep_summary,
)
from repro.registry import ANALYSES

ANALYSES.register(
    "scheme-comparison",
    analyze_scheme_comparison,
    aliases=("comparison",),
    description="per-scheme replication stats + CI-carrying speedup/gain summary",
)
ANALYSES.register(
    "sweep-summary",
    analyze_sweep_summary,
    aliases=("sweep",),
    description="reassemble sweep points (parameter, speedup, dominance) from tags",
)
ANALYSES.register(
    "fct-cdf",
    analyze_fct_cdf,
    aliases=("cdf",),
    description="pooled FCT CDFs per scheme and ensemble",
)
ANALYSES.register(
    "availability",
    analyze_availability,
    description="availability/disruption stats per scheme and ensemble",
)
