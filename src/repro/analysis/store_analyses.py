"""Store-driven analyses: pure functions from a ResultStore to an artifact.

Each analysis in the :data:`~repro.registry.ANALYSES` registry takes a
:class:`~repro.exec.store.ResultStore` (or its path) plus keyword parameters
and returns a plain JSON-serialisable dict — nothing here ever runs a
simulation.  The inputs are the canonical results the execution layer
already persisted, so an analysis is reproducible from the JSONL alone, is
backend-independent (the store query API enumerates deterministically), and
re-renders instantly when only presentation changes.

The artifact convention: every analysis returns a dict whose ``"analysis"``
key names the plugin that produced it, so a directory of artifacts is
self-describing.  ``json.loads(json.dumps(artifact))`` must round-trip to an
equal value — the CI report smoke step asserts this — which is why every
number is coerced to a plain float/int on the way out.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.exec.store import ResultStore, StoredEntry
from repro.metrics.replication import ReplicatedComparison
from repro.metrics.stats import DEFAULT_CONFIDENCE


def _replicated_by_scheme(entries):
    """Per-scheme ensembles for a group of entries.

    Lazy import: this module is pulled in by the registry bootstrap, which
    can fire *during* the import of :mod:`repro.exec.executors` — importing
    :mod:`repro.exec.replication` (which needs ``run_jobs``) at module level
    here would make that chain circular.
    """
    from repro.exec.replication import replicated_results_from_entries

    return replicated_results_from_entries(entries)

#: A store as accepted by every analysis: instance or path.
StoreLike = Union[str, ResultStore]


def _as_store(store: StoreLike) -> ResultStore:
    return store if isinstance(store, ResultStore) else ResultStore(store)


def _replication_groups(store: StoreLike, ensemble: Optional[str]):
    """Ensemble groups for the replication analyses, non-replicates excluded.

    Two kinds of entries must never be aggregated as replicates, because
    their spread is configuration variation, not replication uncertainty:

    * sweep points — entries carrying a ``parameter`` tag vary the
      operating point (arrival rate, τ, outage length); ``sweep-summary``
      is their analysis;
    * ambiguous scheme groups — two entries of one scheme sharing a
      replicate index (e.g. two *edited variants* of a scenario that kept
      the same name, each stored as replicate 0).

    Both are dropped and counted; the counts surface in every artifact so
    a skip is visible, never silent.
    """
    groups = _as_store(store).group_by_ensemble(ensemble=ensemble)
    filtered: Dict[str, List[StoredEntry]] = {}
    skipped = 0
    for label, entries in groups.items():
        kept = [e for e in entries if "parameter" not in e.tags]
        skipped += len(entries) - len(kept)
        by_scheme: Dict[str, List[StoredEntry]] = {}
        for entry in kept:
            by_scheme.setdefault(entry.scheme_name, []).append(entry)
        unambiguous: List[StoredEntry] = []
        for scheme_entries in by_scheme.values():
            if len({e.replicate for e in scheme_entries}) == len(scheme_entries):
                unambiguous.extend(scheme_entries)
            else:
                skipped += len(scheme_entries)
        if unambiguous:
            filtered[label] = unambiguous
    return filtered, skipped


def _comparison_for(
    entries: Sequence[StoredEntry],
) -> Optional[ReplicatedComparison]:
    """The candidate-vs-baseline view of an ensemble, when one really exists.

    Pairing same-role entries into replicates requires each role's
    replicate indices to be *distinct* (an untagged entry counts as
    replicate 0 — the plain single-seed run that a later ``--seeds N``
    reuses from the cache without rewriting its store line).  Multi-point
    sweep stores therefore never masquerade as ensembles: all their
    entries default to replicate 0, collide, and pairing them — which
    would compute a "CI" across different operating points — is refused.
    """
    candidate = [e for e in entries if e.tags.get("role") == "candidate"]
    baseline = [e for e in entries if e.tags.get("role") == "baseline"]
    if not candidate or not baseline or len(candidate) != len(baseline):
        return None
    if len({e.replicate for e in candidate}) != len(candidate):
        return None
    if len({e.replicate for e in baseline}) != len(baseline):
        return None
    by_scheme = _replicated_by_scheme(list(candidate) + list(baseline))
    cand_key = candidate[0].scheme_name
    base_key = baseline[0].scheme_name
    if cand_key == base_key:
        return None
    try:
        return ReplicatedComparison(
            scenario=entries[0].ensemble,
            candidate=by_scheme[cand_key],
            baseline=by_scheme[base_key],
        )
    except ValueError:
        # Mismatched replicate counts / seeds (a partially-filled store):
        # per-scheme stats are still valid, the paired comparison is not.
        return None


def analyze_scheme_comparison(
    store: StoreLike,
    ensemble: Optional[str] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "normal",
) -> Dict[str, Any]:
    """Per-scheme replication stats and CI-carrying comparison summaries.

    For every ensemble in the store (or only ``ensemble``): mean ± CI of
    each scheme's FCT / throughput / goodput / availability across its
    replicates, plus — when the entries carry the planner's
    candidate/baseline role tags — the full replicated comparison summary
    (speedup, reduction and gain fractions with CI bounds).  Sweep points
    are skipped (see :func:`_replication_groups`), not aggregated.
    """
    groups, non_replicate_entries_skipped = _replication_groups(store, ensemble)
    ensembles: Dict[str, Any] = {}
    for label, entries in sorted(groups.items()):
        by_scheme = _replicated_by_scheme(entries)
        schemes_block = {
            scheme_key: {
                "scheme": replicated.scheme,
                "replicates": int(replicated.n_replicates),
                "seeds": [int(seed) for seed in replicated.seeds],
                "mean_fct_s": replicated.fct_stats(confidence, method).to_dict(),
                "mean_throughput_kBps": replicated.throughput_stats(
                    confidence, method
                ).to_dict(),
                "mean_goodput_kBps": replicated.goodput_stats(
                    confidence, method
                ).to_dict(),
                "mean_availability": replicated.availability_stats(
                    confidence, method
                ).to_dict(),
            }
            for scheme_key, replicated in by_scheme.items()
        }
        block: Dict[str, Any] = {"schemes": schemes_block}
        comparison = _comparison_for(entries)
        if comparison is not None:
            block["comparison"] = {
                "candidate": comparison.candidate.scheme,
                "baseline": comparison.baseline.scheme,
                "replicates": int(comparison.n_replicates),
                "summary": comparison.summary(confidence=confidence, method=method),
            }
        ensembles[label] = block
    return {
        "analysis": "scheme-comparison",
        "confidence": float(confidence),
        "method": str(method),
        "ensembles": ensembles,
        "non_replicate_entries_skipped": int(non_replicate_entries_skipped),
    }


def analyze_sweep_summary(
    store: StoreLike,
    parameter_name: str = "parameter",
    ensemble: Optional[str] = None,
) -> Dict[str, Any]:
    """Reassemble sweep points (load, τ, outage) from a sweep store.

    Uses the ``parameter``/``role`` tags the sweep planners attach; entries
    without a ``parameter`` tag (plain comparisons, replication ensembles)
    are counted but not folded into points.  Points group per ensemble
    label (for sweep jobs that is the scenario's name), so two sweeps of
    different scenarios sharing one store never mix; two sweeps of the
    *same* scenario colliding on a parameter value are detected instead of
    silently overwritten — the first entry (in the store's deterministic
    order) wins and ``parameter_collisions`` reports how many were dropped.
    """
    from repro.metrics.comparison import ComparisonResult

    groups = _as_store(store).group_by_ensemble(ensemble=ensemble)
    points: List[Dict[str, Any]] = []
    skipped = 0
    collisions = 0
    for label, entries in sorted(groups.items()):
        by_parameter: Dict[float, Dict[str, StoredEntry]] = {}
        for entry in entries:
            parameter = entry.tags.get("parameter")
            if parameter is None:
                skipped += 1
                continue
            slot = by_parameter.setdefault(float(parameter), {})
            role = str(entry.tags.get("role"))
            if role in slot:
                collisions += 1
                continue
            slot[role] = entry
        for parameter in sorted(by_parameter):
            roles = by_parameter[parameter]
            if "candidate" not in roles or "baseline" not in roles:
                continue
            candidate = roles["candidate"].result
            baseline = roles["baseline"].result
            comparison = ComparisonResult(
                scenario=f"{parameter_name}={parameter:g}",
                candidate=candidate,
                baseline=baseline,
            )
            points.append(
                {
                    "ensemble": str(label),
                    "parameter": float(parameter),
                    "candidate_mean_fct_s": float(candidate.mean_fct_s()),
                    "baseline_mean_fct_s": float(baseline.mean_fct_s()),
                    "speedup": float(comparison.speedup_afct()),
                    "cdf_dominance": float(comparison.cdf_dominance()),
                }
            )
    return {
        "analysis": "sweep-summary",
        "parameter_name": str(parameter_name),
        "points": points,
        "entries_without_parameter": int(skipped),
        "parameter_collisions": int(collisions),
    }


def analyze_fct_cdf(
    store: StoreLike,
    ensemble: Optional[str] = None,
) -> Dict[str, Any]:
    """Pooled FCT CDFs per scheme, per ensemble.

    Replicates pool (every flow weighs equally), so N-seed CDFs are the
    replication layer's sharper estimate of Figures 8/11/14/16/18.  Sweep
    points are skipped (see :func:`_replication_groups`) — pooling flows
    across operating points would blur distinct CDFs into one.
    """
    groups, non_replicate_entries_skipped = _replication_groups(store, ensemble)
    ensembles: Dict[str, Any] = {}
    for label, entries in sorted(groups.items()):
        by_scheme = _replicated_by_scheme(entries)
        curves: Dict[str, Any] = {}
        for scheme_key, replicated in by_scheme.items():
            pooled = replicated.pooled()
            x, y = pooled.fct_cdf()
            curves[scheme_key] = {
                "scheme": replicated.scheme,
                "replicates": int(replicated.n_replicates),
                "flows": int(pooled.completed_flows),
                "x": [float(v) for v in np.asarray(x, dtype=float)],
                "y": [float(v) for v in np.asarray(y, dtype=float)],
            }
        ensembles[label] = curves
    return {
        "analysis": "fct-cdf",
        "ensembles": ensembles,
        "non_replicate_entries_skipped": int(non_replicate_entries_skipped),
    }


def analyze_availability(
    store: StoreLike,
    ensemble: Optional[str] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "normal",
) -> Dict[str, Any]:
    """Availability/disruption stats per scheme, per ensemble.

    Mean link availability across replicates (with CI), total sampled
    disrupted time, and the dynamics counters (reroutes, aborts, churn)
    summed over replicates — all trivial/zero on static worlds.  Sweep
    points are skipped (see :func:`_replication_groups`).
    """
    groups, non_replicate_entries_skipped = _replication_groups(store, ensemble)
    ensembles: Dict[str, Any] = {}
    for label, entries in sorted(groups.items()):
        by_scheme = _replicated_by_scheme(entries)
        schemes_block: Dict[str, Any] = {}
        for scheme_key, replicated in by_scheme.items():
            def _extra_total(name: str) -> float:
                return float(
                    sum(result.extras.get(name, 0.0) for result in replicated.results)
                )

            schemes_block[scheme_key] = {
                "scheme": replicated.scheme,
                "replicates": int(replicated.n_replicates),
                "mean_availability": replicated.availability_stats(
                    confidence, method
                ).to_dict(),
                "disrupted_time_s": float(
                    sum(
                        result.availability.disrupted_time_s()
                        for result in replicated.results
                    )
                ),
                "links_failed": _extra_total("links_failed"),
                "links_restored": _extra_total("links_restored"),
                "flows_rerouted_on_failure": _extra_total("flows_rerouted_on_failure"),
                "flows_aborted_on_failure": _extra_total("flows_aborted_on_failure"),
                "servers_departed": _extra_total("servers_departed"),
                "requests_disrupted": _extra_total("requests_disrupted"),
            }
        ensembles[label] = schemes_block
    return {
        "analysis": "availability",
        "confidence": float(confidence),
        "method": str(method),
        "ensembles": ensembles,
        "non_replicate_entries_skipped": int(non_replicate_entries_skipped),
    }


__all__ = [
    "analyze_availability",
    "analyze_fct_cdf",
    "analyze_scheme_comparison",
    "analyze_sweep_summary",
]
