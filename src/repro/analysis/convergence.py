"""Step-response analysis of the SCDA rate metric.

The RM/RA allocation (equation 2 with the effective flow count of equation 3)
is an iterative, distributed computation: after a load change the advertised
rate needs a few control intervals to settle on the new max-min share.  These
helpers quantify that — how many rounds to converge, how large the transient
over-subscription is — and back the τ-sweep ablation with analysis rather
than only end-to-end FCT numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.rate_metric import LinkRateCalculator, ScdaParams


@dataclass
class ConvergenceResult:
    """The trajectory of one step-response experiment."""

    rates_bps: List[float]
    target_bps: float
    tolerance: float
    queue_bytes: List[float] = field(default_factory=list)

    @property
    def rounds_to_converge(self) -> Optional[int]:
        """First round after which the rate stays within tolerance of the target.

        None if it never converges within the simulated rounds.
        """
        rates = np.asarray(self.rates_bps)
        within = np.abs(rates - self.target_bps) <= self.tolerance * self.target_bps
        for start in range(len(rates)):
            if within[start:].all():
                return start
        return None

    @property
    def max_overshoot_fraction(self) -> float:
        """Largest transient excess of total demand over the target rate."""
        rates = np.asarray(self.rates_bps)
        if rates.size == 0 or self.target_bps <= 0:
            return 0.0
        return float(max(0.0, rates.max() / self.target_bps - 1.0))

    @property
    def converged(self) -> bool:
        return self.rounds_to_converge is not None


def rate_metric_step_response(
    capacity_bps: float,
    num_flows_before: int,
    num_flows_after: int,
    rounds: int = 40,
    params: Optional[ScdaParams] = None,
    tolerance: float = 0.05,
    track_queue: bool = True,
) -> ConvergenceResult:
    """Simulate a closed-loop step change in the number of flows on one link.

    Flows always send at whatever the link advertised in the previous round
    (the SCDA transport's behaviour); at round ``rounds // 2`` the flow count
    steps from ``num_flows_before`` to ``num_flows_after``.  Returns the
    trajectory of the advertised rate and the (fluid) queue that builds up
    while the allocation is catching up.
    """
    if num_flows_before < 0 or num_flows_after < 0:
        raise ValueError("flow counts must be non-negative")
    if rounds < 2:
        raise ValueError("need at least two rounds")
    params = params or ScdaParams()
    calc = LinkRateCalculator(capacity_bps, params)
    tau = params.control_interval_s

    rates: List[float] = []
    queues: List[float] = []
    queue_bytes = 0.0
    step_round = rounds // 2
    for round_index in range(rounds):
        n = num_flows_before if round_index < step_round else num_flows_after
        advertised = calc.current_rate_bps
        # Every flow sends at the advertised per-flow rate for one interval.
        offered_bps = n * advertised
        # Fluid queue at the link: grows when offered exceeds raw capacity.
        queue_bytes = max(0.0, queue_bytes + (offered_bps - capacity_bps) * tau / 8.0)
        new_rate = calc.update(
            queue_bytes=queue_bytes if track_queue else 0.0,
            flow_rates_bps=[advertised] * n,
        )
        rates.append(new_rate)
        queues.append(queue_bytes)

    n_final = max(num_flows_after, 1)
    target = params.alpha * capacity_bps / n_final if num_flows_after > 0 else params.alpha * capacity_bps
    # Only the post-step trajectory matters for convergence.
    return ConvergenceResult(
        rates_bps=rates[step_round:],
        target_bps=target,
        tolerance=tolerance,
        queue_bytes=queues[step_round:],
    )


def rounds_to_converge(
    capacity_bps: float,
    num_flows_before: int,
    num_flows_after: int,
    params: Optional[ScdaParams] = None,
    tolerance: float = 0.05,
    max_rounds: int = 200,
) -> Optional[int]:
    """Convenience wrapper returning only the convergence round count."""
    result = rate_metric_step_response(
        capacity_bps,
        num_flows_before,
        num_flows_after,
        rounds=max_rounds,
        params=params,
        tolerance=tolerance,
    )
    return result.rounds_to_converge
