"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that callbacks (and processes) can
wait on.  Events move through the states PENDING -> SCHEDULED -> TRIGGERED,
or PENDING/SCHEDULED -> CANCELLED.  Composite events (:class:`AllOf`,
:class:`AnyOf`) trigger when their children do.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, List, Optional


class EventState(enum.Enum):
    """Lifecycle states of an :class:`Event`."""

    PENDING = "pending"        #: created, not yet placed on the event heap
    SCHEDULED = "scheduled"    #: placed on the heap with a firing time
    TRIGGERED = "triggered"    #: fired; callbacks have run
    CANCELLED = "cancelled"    #: removed before firing


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "_state", "_callbacks", "_value", "_time")

    def __init__(self, sim: "Any", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._state = EventState.PENDING
        self._callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._time: Optional[float] = None

    # -- state inspection ---------------------------------------------------
    @property
    def state(self) -> EventState:
        """Current lifecycle state."""
        return self._state

    @property
    def triggered(self) -> bool:
        """True once the event has fired."""
        return self._state is EventState.TRIGGERED

    @property
    def cancelled(self) -> bool:
        """True if the event was cancelled before firing."""
        return self._state is EventState.CANCELLED

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return self._state in (EventState.PENDING, EventState.SCHEDULED)

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` (None until triggered)."""
        return self._value

    @property
    def scheduled_time(self) -> Optional[float]:
        """Simulated time at which the event is/was scheduled to fire."""
        return self._time

    # -- wiring --------------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event triggers.

        If the event already triggered the callback runs immediately.
        """
        if self._state is EventState.TRIGGERED:
            fn(self)
        elif self._state is EventState.CANCELLED:
            return
        else:
            self._callbacks.append(fn)

    # -- transitions ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately (at the current simulation time)."""
        if not self.pending:
            raise RuntimeError(f"cannot succeed {self!r}: state={self._state}")
        self._value = value
        self._time = self.sim.now
        self._fire()
        return self

    def cancel(self) -> None:
        """Cancel the event; its callbacks will never run."""
        if self._state is EventState.TRIGGERED:
            raise RuntimeError(f"cannot cancel already-triggered {self!r}")
        if self._state is EventState.CANCELLED:
            return
        self._state = EventState.CANCELLED
        self._callbacks.clear()
        self.sim._discard(self)

    # -- internal ------------------------------------------------------------
    def _mark_scheduled(self, time: float) -> None:
        self._state = EventState.SCHEDULED
        self._time = time

    def _fire(self) -> None:
        """Run callbacks; used by the engine and by :meth:`succeed`."""
        self._state = EventState.TRIGGERED
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.__class__.__name__
        return f"<{label} state={self._state.value} t={self._time}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Created through :meth:`repro.sim.engine.Simulator.timeout`.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Any", delay: float, value: Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(sim, name or f"timeout({delay:g})")
        self.delay = float(delay)
        self._value = value
        sim._schedule_event(self, sim.now + self.delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Composite(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Any", events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name)
        self.events: List[Event] = list(events)
        if not self.events:
            # An empty composite triggers immediately with an empty result.
            self._value = []
            sim._schedule_event(self, sim.now)
            return
        self._remaining = len(self.events)
        for ev in self.events:
            ev.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Composite):
    """Triggers when *all* child events have triggered.

    The value is the list of child values in construction order.
    """

    __slots__ = ()

    def __init__(self, sim: "Any", events: Iterable[Event]) -> None:
        super().__init__(sim, events, "all_of")

    def _child_done(self, event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and self.pending:
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Composite):
    """Triggers when *any* child event triggers.

    The value is the first triggering child event.
    """

    __slots__ = ()

    def __init__(self, sim: "Any", events: Iterable[Event]) -> None:
        super().__init__(sim, events, "any_of")

    def _child_done(self, event: Event) -> None:
        if self.pending:
            self.succeed(event)
