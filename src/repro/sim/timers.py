"""Periodic timers.

The SCDA control plane re-computes rate allocations every control interval τ;
:class:`PeriodicTimer` drives those re-computations (and any other recurring
action such as metric sampling).

Ticks are scheduled through the engine's handle-free fast path
(:meth:`~repro.sim.engine.Simulator.call_at_fast`): every tick would
otherwise allocate an :class:`~repro.sim.events.Event` plus a closure that is
immediately consumed, which adds up for high-frequency monitors over long
runs.  Cancellation is replaced by a generation counter — :meth:`stop` bumps
the generation, so an already-scheduled tick record fires as a no-op.

One observable consequence: the in-flight tick record of a stopped timer
stays on the heap (at most one, at most one interval after the stop).  An
*unbounded* ``run()`` that would otherwise drain the queue processes it as a
no-op, i.e. the clock can come to rest up to one interval past the stop
time.  Bounded runs (``run(until=...)``) and ``FabricSimulator.drain`` are
unaffected.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


class TimerWheel:
    """Bucket same-deadline timer callbacks behind one heap record.

    Thousands of periodic control-round timers sharing a τ grid all fire at
    the same instants; scheduled individually, every timer pays a heap
    push+pop per round.  The wheel buckets callbacks by *exact* deadline:
    the first callback for a deadline pushes one handle-free heap record,
    later ones append to the bucket at O(1) — O(1) amortised per timer per
    round instead of O(log heap).

    At fire time the bucket flushes in registration order, so callbacks
    registered through the wheel keep FIFO determinism *among themselves*.
    Relative order against non-wheel events at the same instant changes
    (the whole bucket fires when its record pops), which is why the wheel is
    strictly opt-in — see :class:`PeriodicTimer`'s ``wheel`` parameter.
    """

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        self._buckets: Dict[float, List[Tuple[Callable[..., None], tuple]]] = {}
        # Perf counters (exported through MetricsCollector.kernel_extras).
        self.scheduled = 0
        self.flushes = 0
        self.max_bucket = 0

    def call_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time`` through the shared bucket."""
        bucket = self._buckets.get(time)
        if bucket is None:
            self.sim.call_at_fast(time, self._flush, time)
            bucket = self._buckets[time] = []
        bucket.append((fn, args))
        self.scheduled += 1
        if len(bucket) > self.max_bucket:
            self.max_bucket = len(bucket)

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """:meth:`call_at` relative to the current simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.call_at(self.sim.now + delay, fn, *args)

    def _flush(self, time: float) -> None:
        self.flushes += 1
        for fn, args in self._buckets.pop(time, ()):
            fn(*args)

    @property
    def pending(self) -> int:
        """Callbacks currently waiting in buckets (occupancy)."""
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def open_buckets(self) -> int:
        """Distinct deadlines currently holding at least one callback."""
        return len(self._buckets)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the perf-counter export."""
        return {
            "scheduled": self.scheduled,
            "flushes": self.flushes,
            "max_bucket": self.max_bucket,
            "pending": self.pending,
            "open_buckets": self.open_buckets,
        }


class PeriodicTimer:
    """Invoke a callback every ``interval`` seconds of simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.
    interval:
        Period in seconds (must be positive).
    callback:
        Called as ``callback(now)`` on every tick.
    start_at:
        Absolute time of the first tick.  Defaults to ``sim.now + interval``.
    jitter_fn:
        Optional callable returning a per-tick offset added to the period
        (used to de-synchronise monitors if desired).
    wheel:
        Optional :class:`TimerWheel`.  When given, ticks are scheduled
        through the wheel's deadline buckets instead of individual heap
        records — the right choice for fleets of timers sharing the same
        period grid (e.g. per-server SCDA control-round monitors), where it
        turns a heap push per timer per round into a list append.
    """

    def __init__(
        self,
        sim: Any,
        interval: float,
        callback: Callable[[float], None],
        start_at: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
        wheel: Optional[TimerWheel] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.jitter_fn = jitter_fn
        self.wheel = wheel
        self._active = True
        self._ticks = 0
        #: Bumped on stop(); a tick record carrying a stale generation is a no-op.
        self._generation = 0
        first = sim.now + self.interval if start_at is None else max(start_at, sim.now)
        self._schedule_tick(first)

    def _schedule_tick(self, time: float) -> None:
        if self.wheel is not None:
            self.wheel.call_at(time, self._tick, self._generation)
        else:
            self.sim.call_at_fast(time, self._tick, self._generation)

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def active(self) -> bool:
        """True until :meth:`stop` is called."""
        return self._active

    def stop(self) -> None:
        """Stop the timer; the callback never runs again.

        The already-scheduled tick record cannot be removed from the heap
        (it has no handle); it fires as a no-op at its original time, which
        an unbounded ``run()`` observes as the clock resting up to one
        interval past the stop.
        """
        self._active = False
        self._generation += 1

    def _tick(self, generation: int) -> None:
        if not self._active or generation != self._generation:
            return
        self._ticks += 1
        self.callback(self.sim.now)
        if not self._active:
            return
        delay = self.interval
        if self.jitter_fn is not None:
            delay = max(1e-9, delay + float(self.jitter_fn()))
        self._schedule_tick(self.sim.now + delay)
