"""Periodic timers.

The SCDA control plane re-computes rate allocations every control interval τ;
:class:`PeriodicTimer` drives those re-computations (and any other recurring
action such as metric sampling).

Ticks are scheduled through the engine's handle-free fast path
(:meth:`~repro.sim.engine.Simulator.call_at_fast`): every tick would
otherwise allocate an :class:`~repro.sim.events.Event` plus a closure that is
immediately consumed, which adds up for high-frequency monitors over long
runs.  Cancellation is replaced by a generation counter — :meth:`stop` bumps
the generation, so an already-scheduled tick record fires as a no-op.

One observable consequence: the in-flight tick record of a stopped timer
stays on the heap (at most one, at most one interval after the stop).  An
*unbounded* ``run()`` that would otherwise drain the queue processes it as a
no-op, i.e. the clock can come to rest up to one interval past the stop
time.  Bounded runs (``run(until=...)``) and ``FabricSimulator.drain`` are
unaffected.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class PeriodicTimer:
    """Invoke a callback every ``interval`` seconds of simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.
    interval:
        Period in seconds (must be positive).
    callback:
        Called as ``callback(now)`` on every tick.
    start_at:
        Absolute time of the first tick.  Defaults to ``sim.now + interval``.
    jitter_fn:
        Optional callable returning a per-tick offset added to the period
        (used to de-synchronise monitors if desired).
    """

    def __init__(
        self,
        sim: Any,
        interval: float,
        callback: Callable[[float], None],
        start_at: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.jitter_fn = jitter_fn
        self._active = True
        self._ticks = 0
        #: Bumped on stop(); a tick record carrying a stale generation is a no-op.
        self._generation = 0
        first = sim.now + self.interval if start_at is None else max(start_at, sim.now)
        sim.call_at_fast(first, self._tick, self._generation)

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def active(self) -> bool:
        """True until :meth:`stop` is called."""
        return self._active

    def stop(self) -> None:
        """Stop the timer; the callback never runs again.

        The already-scheduled tick record cannot be removed from the heap
        (it has no handle); it fires as a no-op at its original time, which
        an unbounded ``run()`` observes as the clock resting up to one
        interval past the stop.
        """
        self._active = False
        self._generation += 1

    def _tick(self, generation: int) -> None:
        if not self._active or generation != self._generation:
            return
        self._ticks += 1
        self.callback(self.sim.now)
        if not self._active:
            return
        delay = self.interval
        if self.jitter_fn is not None:
            delay = max(1e-9, delay + float(self.jitter_fn()))
        self.sim.call_in_fast(delay, self._tick, self._generation)
