"""Periodic timers.

The SCDA control plane re-computes rate allocations every control interval τ;
:class:`PeriodicTimer` drives those re-computations (and any other recurring
action such as metric sampling).
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class PeriodicTimer:
    """Invoke a callback every ``interval`` seconds of simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.
    interval:
        Period in seconds (must be positive).
    callback:
        Called as ``callback(now)`` on every tick.
    start_at:
        Absolute time of the first tick.  Defaults to ``sim.now + interval``.
    jitter_fn:
        Optional callable returning a per-tick offset added to the period
        (used to de-synchronise monitors if desired).
    """

    def __init__(
        self,
        sim: Any,
        interval: float,
        callback: Callable[[float], None],
        start_at: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.jitter_fn = jitter_fn
        self._active = True
        self._ticks = 0
        first = sim.now + self.interval if start_at is None else max(start_at, sim.now)
        self._pending = sim.call_at(first, self._tick)

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def active(self) -> bool:
        """True until :meth:`stop` is called."""
        return self._active

    def stop(self) -> None:
        """Stop the timer; no further ticks will fire."""
        self._active = False
        if self._pending is not None and self._pending.pending:
            self._pending.cancel()
        self._pending = None

    def _tick(self) -> None:
        if not self._active:
            return
        self._ticks += 1
        self.callback(self.sim.now)
        if not self._active:
            return
        delay = self.interval
        if self.jitter_fn is not None:
            delay = max(1e-9, delay + float(self.jitter_fn()))
        self._pending = self.sim.call_in(delay, self._tick)
