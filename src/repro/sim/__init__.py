"""Discrete-event simulation kernel.

The kernel replaces NS-2 (used by the paper) and SimPy (unavailable offline)
with a small, deterministic, pure-Python discrete-event engine:

* :class:`~repro.sim.engine.Simulator` — event heap and simulation clock.
* :class:`~repro.sim.events.Event` — schedulable events with cancellation.
* :class:`~repro.sim.process.Process` — generator-based cooperative
  processes, SimPy-style (``yield sim.timeout(1.0)``).
* :mod:`~repro.sim.resources` — capacity resources, stores and containers.
* :class:`~repro.sim.random.RandomStreams` — named, seeded random streams so
  every experiment is reproducible.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import Event, EventState, Timeout, AllOf, AnyOf, Interrupt
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Resource, PriorityResource, Container, Store
from repro.sim.random import RandomStreams
from repro.sim.timers import PeriodicTimer

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventState",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "RandomStreams",
    "PeriodicTimer",
]
