"""Deterministic, named random streams.

Every stochastic component of the simulation (arrival processes, file sizes,
random server selection, ...) draws from its own named stream so that

* two schemes compared in one experiment see *identical* workloads, and
* adding randomness to one component never perturbs another.

Streams are derived from a master seed with stable hashing, so a scenario is
fully reproducible from ``(master_seed, stream_name)`` pairs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np


def derive_seed(master_seed: int, name: str, *names: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream-name path.

    With a single name this is the classic flat derivation; additional names
    chain hierarchically — ``derive_seed(s, "sweep", "rate=40", "scda")`` is
    ``derive_seed(derive_seed(derive_seed(s, "sweep"), "rate=40"), "scda")``.
    The execution planner uses the hierarchical form to give every
    :class:`~repro.exec.job.ExperimentJob` a seed that depends only on the
    job's *identity* (sweep, point, scheme), never on the order or process in
    which jobs run — which is what keeps parallel runs bit-identical to
    serial ones.

    The derivation is SHA-256 over the decimal seed and the UTF-8 name, so it
    is stable across interpreter restarts, platforms and Python versions
    (unlike the built-in ``hash``, which is salted per process).
    """
    seed = int(master_seed)
    for part in (name, *names):
        digest = hashlib.sha256(f"{seed}:{part}".encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
    return seed


class RandomStreams:
    """A factory of independent, reproducible :class:`numpy.random.Generator` s."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self.master_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of the parent's."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    # Convenience draws -------------------------------------------------------
    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def pareto(self, name: str, mean: float, shape: float) -> float:
        """One Pareto (Lomax-style, shifted) draw with the given mean and shape.

        Uses the classic NS-2 parametrisation: for shape ``a > 1`` the scale is
        ``mean * (a - 1) / a`` so that the expectation equals ``mean``.
        """
        if shape <= 1.0:
            raise ValueError(f"Pareto shape must be > 1 for a finite mean, got {shape}")
        scale = mean * (shape - 1.0) / shape
        u = self.stream(name).random()
        # Inverse-CDF of the Pareto distribution with minimum value ``scale``.
        return float(scale / (1.0 - u) ** (1.0 / shape))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in ``[low, high)``."""
        return float(self.stream(name).uniform(low, high))

    def choice(self, name: str, options: Sequence, size: Optional[int] = None):
        """Uniform random choice among ``options``."""
        options = list(options)
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        idx = self.stream(name).integers(0, len(options), size=size)
        if size is None:
            return options[int(idx)]
        return [options[int(i)] for i in np.atleast_1d(idx)]

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)``."""
        return int(self.stream(name).integers(low, high))
