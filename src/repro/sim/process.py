"""Generator-based cooperative processes.

A :class:`Process` wraps a Python generator.  The generator yields *waitables*
(events, other processes, or plain numbers meaning "sleep this long"); the
process resumes when the waitable triggers and receives its value as the
result of the ``yield`` expression.  This mirrors the SimPy programming model
closely enough that simulation logic written against SimPy ports over almost
verbatim.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from repro.sim.events import Event, Interrupt


class ProcessKilled(Exception):
    """Raised inside a generator when its process is killed."""


Waitable = Union[Event, "Process", float, int]


class Process(Event):
    """A running generator, itself usable as an event (fires on completion).

    The completion value is the generator's ``return`` value.
    """

    __slots__ = ("generator", "_waiting_on", "_alive")

    def __init__(self, sim: Any, generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim, name=getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._alive = True
        # Start the process asynchronously at the current time so that the
        # creator finishes its own event handling first (deterministic order).
        kickoff = Event(sim, name=f"start:{self.name}")
        kickoff.add_callback(lambda _ev: self._resume(None))
        sim._schedule_event(kickoff, sim.now)

    # -- public API --------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished or been killed."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.sim.events.Interrupt` into the generator."""
        if not self._alive:
            return
        self._detach()
        self._throw(Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process; the completion event is cancelled."""
        if not self._alive:
            return
        self._alive = False
        self._detach()
        try:
            self.generator.close()
        finally:
            if self.pending:
                self.cancel()

    # -- engine plumbing -----------------------------------------------------------
    def _detach(self) -> None:
        self._waiting_on = None

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException:
            # The generator body raised: the process is dead and the error
            # propagates to the simulation loop (fail fast, no silent loss).
            self._alive = False
            raise
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException:
            self._alive = False
            raise
        self._wait_on(target)

    def _finish(self, value: Any) -> None:
        self._alive = False
        if self.pending:
            self.succeed(value)

    def _wait_on(self, target: Waitable) -> None:
        if isinstance(target, (int, float)):
            target = self.sim.timeout(float(target))
        if not isinstance(target, Event):
            self._throw(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; expected an Event, "
                    "Process, or a number of seconds"
                )
            )
            return
        self._waiting_on = target

        def _on_trigger(ev: Event, _self=self, _target=target) -> None:
            if _self._waiting_on is _target:
                _self._waiting_on = None
                _self._resume(ev.value)

        target.add_callback(_on_trigger)
