"""Capacity-limited resources for processes.

These primitives model contention for CPU slots, disk queues and similar
server-side resources in the SCDA simulation:

* :class:`Resource` — N identical slots acquired/released one at a time.
* :class:`PriorityResource` — like :class:`Resource` but waiters are served
  lowest-priority-number first (ties broken FIFO).
* :class:`Container` — a continuous quantity (e.g. disk bytes) with put/get.
* :class:`Store` — a FIFO queue of Python objects (e.g. request queues).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.events import Event


class Resource:
    """A pool of ``capacity`` identical slots.

    ``request()`` returns an event that fires when a slot is granted; the
    holder must call ``release()`` exactly once per granted request.
    """

    def __init__(self, sim: Any, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Ask for a slot; the returned event fires when the slot is granted."""
        ev = Event(self.sim, name=f"{self.name}.request")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim._schedule_event(ev, self.sim.now)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a previously granted slot."""
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release() without a matching request()")
        # Hand the slot directly to the next live waiter, if any.
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.cancelled:
                continue
            self.sim._schedule_event(waiter, self.sim.now)
            return
        self._in_use -= 1


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are granted in priority order.

    Lower numeric priority is served first; equal priorities are FIFO.
    """

    def __init__(self, sim: Any, capacity: int = 1, name: str = "priority-resource") -> None:
        super().__init__(sim, capacity, name)
        self._pwaiters: List[Tuple[float, int, Event]] = []
        self._tie = itertools.count()

    @property
    def queue_length(self) -> int:
        return len(self._pwaiters)

    def request(self, priority: float = 0.0) -> Event:
        ev = Event(self.sim, name=f"{self.name}.request(p={priority})")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim._schedule_event(ev, self.sim.now)
        else:
            heapq.heappush(self._pwaiters, (float(priority), next(self._tie), ev))
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"{self.name}: release() without a matching request()")
        while self._pwaiters:
            _prio, _tie, waiter = heapq.heappop(self._pwaiters)
            if waiter.cancelled:
                continue
            self.sim._schedule_event(waiter, self.sim.now)
            return
        self._in_use -= 1


class Container:
    """A continuous quantity with bounded capacity (e.g. disk space in bytes)."""

    def __init__(
        self,
        sim: Any,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if init < 0 or init > capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: Deque[Tuple[float, Event]] = deque()
        self._putters: Deque[Tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; the event fires when it fits within capacity."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.sim, name=f"{self.name}.put({amount:g})")
        self._putters.append((float(amount), ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; the event fires when that much is available."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.sim, name=f"{self.name}.get({amount:g})")
        self._getters.append((float(amount), ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if ev.cancelled:
                    self._putters.popleft()
                    progressed = True
                elif self._level + amount <= self.capacity + 1e-12:
                    self._putters.popleft()
                    self._level += amount
                    self.sim._schedule_event(ev, self.sim.now)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if ev.cancelled:
                    self._getters.popleft()
                    progressed = True
                elif self._level >= amount - 1e-12:
                    self._getters.popleft()
                    self._level -= amount
                    self.sim._schedule_event(ev, self.sim.now)
                    progressed = True


class Store:
    """An unbounded-or-bounded FIFO queue of arbitrary items."""

    def __init__(self, sim: Any, capacity: Optional[int] = None, name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be None or >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """A snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; fires when capacity allows (immediately if unbounded)."""
        ev = Event(self.sim, name=f"{self.name}.put")
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        """Dequeue the oldest item; the event's value is the item."""
        ev = Event(self.sim, name=f"{self.name}.get")
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move pending puts into the queue if there is room.
            if self._putters and (self.capacity is None or len(self._items) < self.capacity):
                item, ev = self._putters.popleft()
                if not ev.cancelled:
                    self._items.append(item)
                    self.sim._schedule_event(ev, self.sim.now)
                progressed = True
            # Serve pending gets.
            if self._getters and self._items:
                ev = self._getters.popleft()
                if ev.cancelled:
                    progressed = True
                    continue
                item = self._items.popleft()
                ev._value = item
                self.sim._schedule_event(ev, self.sim.now)
                progressed = True
