"""The discrete-event simulation engine.

The :class:`Simulator` owns the simulation clock and a binary-heap event
queue.  Events scheduled at the same simulated time fire in FIFO order of
scheduling (a monotone tie-break counter), which keeps runs fully
deterministic.

Two fast paths keep the hot loop lean at scale:

* **Lazy-cancellation compaction** — ``heapq`` has no efficient removal, so a
  cancelled event stays on the heap until popped.  Workloads that constantly
  reschedule (the fabric cancels and re-arms its recompute timer on every
  flow arrival) used to grow the heap without bound; the simulator now counts
  cancelled residents and rebuilds the heap whenever they outnumber the live
  ones, keeping heap size O(live events).
* **Handle-free scheduling** — :meth:`call_at_fast` pushes a bare
  ``(time, tick, fn, args)`` record instead of allocating an :class:`Event`
  plus a closure.  It returns no handle and cannot be cancelled; hot periodic
  timers that guard themselves with a flag (see
  :class:`repro.sim.timers.PeriodicTimer`) use it to halve their per-tick
  allocation cost.

Heap records are ``(time, tick, event)`` for cancellable events and
``(time, tick, None, fn, args)`` for fast records; the tick counter is unique
so tuple comparison never reaches the third element.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout

#: Compaction never triggers below this heap size — rebuilding a tiny heap
#: costs more than carrying a few cancelled entries.
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    Callback style::

        sim = Simulator()
        sim.call_at(2.5, lambda: print("hello at", sim.now))
        sim.run(until=10.0)

    Process (generator) style::

        def proc(sim):
            yield sim.timeout(1.0)
            print("one second elapsed")

        sim = Simulator()
        sim.process(proc(sim))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._event_count = 0
        self._cancelled_in_heap = 0
        #: Times the heap was rebuilt to shed cancelled residents (perf counter).
        self.heap_compactions = 0
        self._wheel = None

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (useful for sanity checks)."""
        return self._event_count

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled) records currently on the heap."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled residents included (compaction metric)."""
        return len(self._heap)

    # -- event creation --------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a bare, untriggered :class:`Event` owned by this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Returns the underlying event so the call can be cancelled.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        ev = Event(self, name=getattr(fn, "__name__", "call"))
        ev.add_callback(lambda _ev: fn(*args))
        self._schedule_event(ev, max(time, self._now))
        return ev

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def call_at_fast(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time`` with no cancellation handle.

        Pushes a bare ``(time, tick, None, fn, args)`` record — no
        :class:`Event`, no closure — so it is materially cheaper than
        :meth:`call_at` on hot paths that schedule millions of timers.  The
        record cannot be cancelled; callers that may need to abandon a
        scheduled call must either use :meth:`call_at` or guard the callback
        with their own liveness flag (the record then fires as a no-op).
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        if time < self._now:
            time = self._now
        heapq.heappush(self._heap, (time, next(self._counter), None, fn, args))

    def call_in_fast(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`call_at_fast` relative to the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self.call_at_fast(self._now + delay, fn, *args)

    def timer_wheel(self) -> "Any":
        """This simulator's shared :class:`~repro.sim.timers.TimerWheel`.

        Created lazily on first use; periodic timers that opt into the wheel
        (``PeriodicTimer(..., wheel=sim.timer_wheel())``) share one heap
        record per distinct deadline instead of one per timer.
        """
        if self._wheel is None:
            from repro.sim.timers import TimerWheel

            self._wheel = TimerWheel(self)
        return self._wheel

    def process(self, generator) -> "Any":
        """Start a generator as a cooperative process.

        See :class:`repro.sim.process.Process`.
        """
        from repro.sim.process import Process

        return Process(self, generator)

    def _schedule_event(self, event: Event, time: float) -> None:
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event._mark_scheduled(time)
        heapq.heappush(self._heap, (time, next(self._counter), event))

    def _discard(self, event: Event) -> None:
        """Account a lazy cancellation; compact the heap when it is mostly dead.

        ``heapq`` has no efficient removal, so cancelled events stay on the
        heap and the run loop skips them.  Once cancelled residents outnumber
        the live ones the whole heap is rebuilt without them, which bounds
        heap growth to O(live) amortised — a workload scheduling and
        cancelling N timers does O(N log N) total compaction work.
        """
        if event.scheduled_time is None:
            return  # never placed on the heap (cancelled while PENDING)
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events."""
        self._heap = [
            rec for rec in self._heap if rec[2] is None or not rec[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.heap_compactions += 1

    # -- execution ---------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap:
            rec = self._heap[0]
            event = rec[2]
            if event is not None and event.cancelled:
                heapq.heappop(self._heap)
                if self._cancelled_in_heap > 0:
                    self._cancelled_in_heap -= 1
                continue
            return rec[0]
        return None

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            rec = heapq.heappop(self._heap)
            event = rec[2]
            if event is None:
                time = rec[0]
                if time < self._now - 1e-9:
                    raise SimulationError("event heap corrupted: time went backwards")
                self._now = time
                self._event_count += 1
                rec[3](*rec[4])
                return True
            if event.cancelled:
                if self._cancelled_in_heap > 0:
                    self._cancelled_in_heap -= 1
                continue
            time = rec[0]
            if time < self._now - 1e-9:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = time
            self._event_count += 1
            event._fire()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulation time at which execution stopped.  If ``until``
        is given the clock is advanced to exactly ``until`` even when the
        queue drains earlier.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and fired >= max_events:
                    break
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until + 1e-12:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = float(until)
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after the current event."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator t={self._now:g} pending={self.pending_count}>"
