"""Content model and activity classification (Section II-B of the paper).

Contents are classified by their write/read frequencies:

* **HWHR** — high write, high read: interactive content (chat, collaborative
  editing, hot database tables);
* **LWHR** — low write, high read: e.g. a popular video uploaded once;
* **HWLR** — high write, low read: e.g. logs, telemetry;
* **LWLR** — low write, low read: passive content (old email attachments);
  the Yahoo! HDFS study cited by the paper found ~60 % of content untouched
  over 20 days.

The thresholds separating "high" from "low", and the interactivity interval
(5 seconds in the paper), are user-defined parameters of the classifier.
Applications may declare the class up front; otherwise the RMs learn it from
the observed access pattern.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ContentClass(enum.Enum):
    """The four activity classes of Section II-B."""

    HWHR = "hwhr"  #: high write, high read — interactive
    LWHR = "lwhr"  #: low write, high read — semi-interactive (read heavy)
    HWLR = "hwlr"  #: high write, low read — semi-interactive (write heavy)
    LWLR = "lwlr"  #: low write, low read — passive

    @property
    def is_interactive(self) -> bool:
        """True for content whose reads and writes interleave tightly."""
        return self is ContentClass.HWHR

    @property
    def is_semi_interactive(self) -> bool:
        """True when exactly one of the write/read frequencies is high."""
        return self in (ContentClass.LWHR, ContentClass.HWLR)

    @property
    def is_passive(self) -> bool:
        """True for low write, low read content."""
        return self is ContentClass.LWLR

    @property
    def is_active(self) -> bool:
        """Everything that is not passive."""
        return not self.is_passive


@dataclass
class AccessStats:
    """Observed access pattern of one content item."""

    writes: int = 0
    reads: int = 0
    first_access_s: Optional[float] = None
    last_access_s: Optional[float] = None
    last_write_s: Optional[float] = None
    last_read_s: Optional[float] = None
    #: smallest observed gap between a write and the following read (or vice versa)
    min_interleave_gap_s: float = float("inf")

    def record_write(self, now: float) -> None:
        """Account one write at time ``now``."""
        if self.last_read_s is not None:
            self.min_interleave_gap_s = min(self.min_interleave_gap_s, abs(now - self.last_read_s))
        self.writes += 1
        self.last_write_s = now
        self._touch(now)

    def record_read(self, now: float) -> None:
        """Account one read at time ``now``."""
        if self.last_write_s is not None:
            self.min_interleave_gap_s = min(
                self.min_interleave_gap_s, abs(now - self.last_write_s)
            )
        self.reads += 1
        self.last_read_s = now
        self._touch(now)

    def _touch(self, now: float) -> None:
        if self.first_access_s is None:
            self.first_access_s = now
        self.last_access_s = now

    def write_rate_per_s(self, horizon_s: float) -> float:
        """Writes per second over ``horizon_s``."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self.writes / horizon_s

    def read_rate_per_s(self, horizon_s: float) -> float:
        """Reads per second over ``horizon_s``."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self.reads / horizon_s


@dataclass
class Content:
    """A stored content item (a file, an object, a video, a table region)."""

    content_id: str
    size_bytes: float
    declared_class: Optional[ContentClass] = None
    owner: str = ""
    stats: AccessStats = field(default_factory=AccessStats)
    meta: Dict[str, object] = field(default_factory=dict)

    _auto_ids = itertools.count()

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"content size must be positive, got {self.size_bytes}")

    @classmethod
    def create(
        cls,
        size_bytes: float,
        declared_class: Optional[ContentClass] = None,
        owner: str = "",
        prefix: str = "content",
    ) -> "Content":
        """Create a content item with a generated id."""
        return cls(f"{prefix}-{next(cls._auto_ids)}", size_bytes, declared_class, owner)


class ContentClassifier:
    """Derives a :class:`ContentClass` from declared type or observed accesses.

    Parameters
    ----------
    high_write_per_s / high_read_per_s:
        Rates above which the write/read frequency counts as "high".
    interactivity_interval_s:
        Maximum write→read interleaving gap for content to be *interactive*
        (5 seconds in the paper).
    observation_horizon_s:
        The window over which rates are computed.
    """

    def __init__(
        self,
        high_write_per_s: float = 1.0 / 60.0,
        high_read_per_s: float = 1.0 / 60.0,
        interactivity_interval_s: float = 5.0,
        observation_horizon_s: float = 3600.0,
    ) -> None:
        if high_write_per_s <= 0 or high_read_per_s <= 0:
            raise ValueError("frequency thresholds must be positive")
        if interactivity_interval_s <= 0:
            raise ValueError("interactivity_interval_s must be positive")
        if observation_horizon_s <= 0:
            raise ValueError("observation_horizon_s must be positive")
        self.high_write_per_s = float(high_write_per_s)
        self.high_read_per_s = float(high_read_per_s)
        self.interactivity_interval_s = float(interactivity_interval_s)
        self.observation_horizon_s = float(observation_horizon_s)

    def classify(self, content: Content) -> ContentClass:
        """The effective class: the declared one, else the learned one."""
        if content.declared_class is not None:
            return content.declared_class
        return self.classify_from_stats(content.stats)

    def classify_from_stats(self, stats: AccessStats) -> ContentClass:
        """Classify purely from the observed access pattern."""
        horizon = self.observation_horizon_s
        if stats.last_access_s is not None and stats.first_access_s is not None:
            observed = stats.last_access_s - stats.first_access_s
            if observed > 0:
                horizon = min(horizon, max(observed, 1.0))
        high_write = stats.write_rate_per_s(horizon) >= self.high_write_per_s
        high_read = stats.read_rate_per_s(horizon) >= self.high_read_per_s
        if high_write and high_read:
            return ContentClass.HWHR
        if high_write:
            return ContentClass.HWLR
        if high_read:
            return ContentClass.LWHR
        return ContentClass.LWLR

    def is_interactive(self, content: Content) -> bool:
        """Interactive = HWHR *and* interleaving within the interactivity interval.

        The paper: "Interactive content is where write and read operations are
        interleaved in less than a few seconds interval with high frequency."
        Content that has never shown tight interleaving falls back to its
        frequency class alone.
        """
        cls = self.classify(content)
        if cls is not ContentClass.HWHR:
            return False
        gap = content.stats.min_interleave_gap_s
        return gap == float("inf") or gap <= self.interactivity_interval_s
