"""The storage cluster facade: executes the request-serving protocols.

:class:`StorageCluster` wires the FES, the name nodes, the block servers and
the network fabric together and exposes the two operations the workloads
drive:

* :meth:`StorageCluster.write` — the external write protocol of
  Section VIII-A (client -> FES -> NNS -> placement -> data flow), followed by
  the internal replication protocol of Section VIII-B;
* :meth:`StorageCluster.read` — the external read protocol of
  Section VIII-C (replica selection by upload rate, then a data flow from the
  chosen block server to the client).

Connection setup (the control messages 1-12 of Figures 3-5) is modelled as a
configurable number of client↔server round-trips before the data flow starts;
the flow's ``created_at`` is the original request time, so FCT includes the
setup latency for both SCDA and the baselines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.block_server import BlockServer
from repro.cluster.client import UserClient
from repro.cluster.content import Content, ContentClass, ContentClassifier
from repro.cluster.front_end import FrontEndServer
from repro.cluster.name_node import NameNodeServer, UnknownContentError
from repro.cluster.placement import PlacementPolicy
from repro.cluster.replication import ReplicationConfig, ReplicationManager, ReplicationTask
from repro.network.fabric import FabricSimulator
from repro.network.flow import Flow, FlowKind, FlowState
from repro.network.routing import NoPathError
from repro.network.topology import Node, NodeKind, Topology
from repro.sim.engine import Simulator


@dataclass
class StorageClusterConfig:
    """Cluster-wide configuration."""

    num_name_nodes: int = 3
    block_size_bytes: float = 64 * 1024 * 1024.0
    #: connection-setup latency, in units of the client<->server base RTT
    setup_rtts: float = 1.5
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    disk_capacity_bytes: float = 4e12

    def __post_init__(self) -> None:
        if self.num_name_nodes < 1:
            raise ValueError("need at least one name node")
        if self.block_size_bytes <= 0:
            raise ValueError("block size must be positive")
        if self.setup_rtts < 0:
            raise ValueError("setup_rtts must be non-negative")
        if self.disk_capacity_bytes <= 0:
            raise ValueError("disk capacity must be positive")


@dataclass
class RequestRecord:
    """Book-keeping for one client request (write or read)."""

    request_id: int
    kind: str                      #: "write" or "read"
    client_id: str
    content_id: str
    size_bytes: float
    created_at: float
    flow_kind: FlowKind
    primary_server: Optional[str] = None
    flow: Optional[Flow] = None
    completed_at: Optional[float] = None
    replication_flows: List[Flow] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def completion_time(self) -> Optional[float]:
        """Request completion time including setup latency."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at


class StorageCluster:
    """The full SCDA data plane on top of a fabric."""

    _request_ids = itertools.count()

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        fabric: FabricSimulator,
        placement: PlacementPolicy,
        config: Optional[StorageClusterConfig] = None,
        classifier: Optional[ContentClassifier] = None,
        on_request_completed: Optional[Callable[[RequestRecord], None]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.fabric = fabric
        self.placement = placement
        self.config = config or StorageClusterConfig()
        self.classifier = classifier or ContentClassifier()
        self.on_request_completed = on_request_completed

        hosts = topology.hosts()
        if not hosts:
            raise ValueError("topology has no host nodes to run block servers on")
        self.block_servers: Dict[str, BlockServer] = {
            host.node_id: BlockServer(host, self.config.disk_capacity_bytes) for host in hosts
        }
        nns_count = min(self.config.num_name_nodes, len(hosts))
        self.name_nodes: Dict[str, NameNodeServer] = {}
        for index in range(nns_count):
            nns_id = f"nns-{index}"
            self.name_nodes[nns_id] = NameNodeServer(
                nns_id, placement, self.classifier, self.config.block_size_bytes
            )
        self.front_end = FrontEndServer(list(self.name_nodes))
        self.replication = ReplicationManager(self.config.replication)

        self.clients: Dict[str, UserClient] = {
            node.node_id: UserClient(node) for node in topology.clients()
        }
        self.requests: List[RequestRecord] = []
        self._requests_by_flow: Dict[int, RequestRecord] = {}
        self._replication_tasks_by_flow: Dict[int, ReplicationTask] = {}
        self._content_registry: Dict[str, Content] = {}
        self._nns_of_content: Dict[str, str] = {}

        #: block servers that have left the cluster (churn); excluded from
        #: placement candidates and from read/replication sources until they
        #: rejoin.
        self._inactive_servers: set = set()
        self.servers_departed = 0
        self.servers_rejoined = 0
        #: client requests whose in-flight transfer was cut short by churn or
        #: a link failure with no surviving path
        self.requests_disrupted = 0

        fabric.on_flow_finished(self._on_flow_finished)
        fabric.on_flow_aborted(self._on_flow_aborted)

    # -- helpers ---------------------------------------------------------------------------
    def _client_node(self, client: Union[Node, UserClient, str]) -> Node:
        if isinstance(client, UserClient):
            return client.node
        if isinstance(client, Node):
            return client
        node = self.topology.node(str(client))
        return node

    def _server_node(self, server_id: str) -> Node:
        return self.block_servers[server_id].node

    def server_ids(self) -> List[str]:
        """Ids of the block servers currently *in* the cluster.

        Departed servers (see :meth:`deactivate_server`) are excluded, so
        every placement decision automatically avoids them; use
        :meth:`all_server_ids` for the full roster including departed ones.
        """
        if not self._inactive_servers:
            return list(self.block_servers)
        return [s for s in self.block_servers if s not in self._inactive_servers]

    def all_server_ids(self) -> List[str]:
        """Every block-server id ever provisioned, active or departed."""
        return list(self.block_servers)

    def is_server_active(self, server_id: str) -> bool:
        """True when ``server_id`` exists and has not departed."""
        return server_id in self.block_servers and server_id not in self._inactive_servers

    def name_node_for_client(self, client_id: str) -> NameNodeServer:
        """Route a client key through the FES to its NNS."""
        return self.name_nodes[self.front_end.route_client(client_id)]

    def name_node_for_content(self, content_id: str) -> NameNodeServer:
        """The NNS holding (or that will hold) the metadata of ``content_id``."""
        if content_id in self._nns_of_content:
            return self.name_nodes[self._nns_of_content[content_id]]
        return self.name_nodes[self.front_end.route_content(content_id)]

    def content(self, content_id: str) -> Content:
        """Look up a stored content item."""
        return self._content_registry[content_id]

    def _setup_delay(self, a: Node, b: Node) -> float:
        return self.config.setup_rtts * self.fabric.router.base_rtt(a, b)

    # -- external write (Section VIII-A) ---------------------------------------------------------
    def write(
        self,
        client: Union[Node, UserClient, str],
        content: Content,
        flow_kind: FlowKind = FlowKind.DATA,
        created_at: Optional[float] = None,
        priority_weight: float = 1.0,
        reserve_bps: float = 0.0,
        multiplicity: int = 1,
        tenant: str = "",
    ) -> RequestRecord:
        """Store ``content`` in the cloud on behalf of ``client``.

        Returns immediately with a :class:`RequestRecord`; the data flow starts
        after the connection-setup latency and the record is completed when the
        flow finishes (replication continues in the background).

        ``multiplicity`` > 1 makes the data transfer an aggregate flow: one
        flow object standing in for that many identical concurrent sessions
        (replication always runs at multiplicity 1 — the cluster stores one
        copy no matter how many clients uploaded it).  ``tenant`` is an
        opaque label carried onto the flow for per-tenant metrics.
        """
        now = self.sim.now
        created = now if created_at is None else created_at
        client_node = self._client_node(client)
        ucl = self.clients.get(client_node.node_id)

        # FES hashes the client id and forwards to the responsible NNS (steps 1-2).
        nns_id = self.front_end.route_client(client_node.node_id)
        nns = self.name_nodes[nns_id]
        # The NNS asks the RA/placement for the best BS (steps 3-5).
        record = nns.register_write(content, self.server_ids(), now)
        primary = record.primary_server
        self._content_registry[content.content_id] = content
        self._nns_of_content[content.content_id] = nns_id
        if ucl is not None:
            ucl.record_write(content.content_id)

        request = RequestRecord(
            request_id=next(self._request_ids),
            kind="write",
            client_id=client_node.node_id,
            content_id=content.content_id,
            size_bytes=content.size_bytes,
            created_at=created,
            flow_kind=flow_kind,
            primary_server=primary,
        )
        self.requests.append(request)

        # Steps 6-12: rate/window exchange — modelled as setup latency, then the
        # data transfer starts (step 13).
        primary_node = self._server_node(primary)
        delay = self._setup_delay(client_node, primary_node)
        self.sim.call_in(
            delay,
            self._start_write_flow,
            request,
            client_node,
            primary_node,
            priority_weight,
            reserve_bps,
            multiplicity,
            tenant,
        )
        return request

    def _start_write_flow(
        self,
        request: RequestRecord,
        client_node: Node,
        primary_node: Node,
        priority_weight: float,
        reserve_bps: float,
        multiplicity: int = 1,
        tenant: str = "",
    ) -> None:
        if not self.is_server_active(primary_node.node_id):
            # The primary departed during connection setup; the write is lost.
            self.requests_disrupted += 1
            return
        meta = {"request_id": request.request_id, "role": "client-write"}
        if reserve_bps > 0:
            meta["reserve_bps"] = reserve_bps
        try:
            flow = self.fabric.start_flow(
                src=client_node,
                dst=primary_node,
                size_bytes=request.size_bytes,
                kind=request.flow_kind,
                created_at=request.created_at,
                priority_weight=priority_weight,
                multiplicity=multiplicity,
                tenant=tenant,
                meta=meta,
            )
        except NoPathError:
            # A link failure disconnected the primary mid-setup.
            self.requests_disrupted += 1
            return
        request.flow = flow
        self._requests_by_flow[flow.flow_id] = request

    # -- external read (Section VIII-C) -----------------------------------------------------------
    def read(
        self,
        client: Union[Node, UserClient, str],
        content_id: str,
        flow_kind: FlowKind = FlowKind.DATA,
        created_at: Optional[float] = None,
        priority_weight: float = 1.0,
        multiplicity: int = 1,
        tenant: str = "",
    ) -> RequestRecord:
        """Retrieve ``content_id`` for ``client``.

        ``multiplicity`` > 1 aggregates that many identical concurrent
        sessions (same client edge, same replica, same size) into one fluid
        flow; ``tenant`` tags the flow for per-tenant metrics.
        """
        now = self.sim.now
        created = now if created_at is None else created_at
        client_node = self._client_node(client)
        ucl = self.clients.get(client_node.node_id)
        if ucl is not None:
            ucl.record_read()

        nns = self.name_node_for_content(content_id)
        if not nns.knows(content_id):
            raise UnknownContentError(content_id)
        source_id = nns.resolve_read(content_id, now)
        source_node = self._server_node(source_id)
        content = self._content_registry[content_id]
        self.block_servers[source_id].record_read(content_id, content.size_bytes)

        request = RequestRecord(
            request_id=next(self._request_ids),
            kind="read",
            client_id=client_node.node_id,
            content_id=content_id,
            size_bytes=content.size_bytes,
            created_at=created,
            flow_kind=flow_kind,
            primary_server=source_id,
        )
        self.requests.append(request)

        delay = self._setup_delay(client_node, source_node)
        self.sim.call_in(
            delay,
            self._start_read_flow,
            request,
            source_node,
            client_node,
            priority_weight,
            multiplicity,
            tenant,
        )
        return request

    def _start_read_flow(
        self,
        request: RequestRecord,
        source_node: Node,
        client_node: Node,
        priority_weight: float,
        multiplicity: int = 1,
        tenant: str = "",
    ) -> None:
        if not self.is_server_active(source_node.node_id):
            # The chosen replica departed during connection setup.
            self.requests_disrupted += 1
            return
        try:
            flow = self.fabric.start_flow(
                src=source_node,
                dst=client_node,
                size_bytes=request.size_bytes,
                kind=request.flow_kind,
                created_at=request.created_at,
                priority_weight=priority_weight,
                multiplicity=multiplicity,
                tenant=tenant,
                meta={"request_id": request.request_id, "role": "client-read"},
            )
        except NoPathError:
            self.requests_disrupted += 1
            return
        request.flow = flow
        self._requests_by_flow[flow.flow_id] = request

    # -- internal replication (Section VIII-B) -------------------------------------------------------
    def _schedule_replication(self, request: RequestRecord) -> None:
        content = self._content_registry[request.content_id]
        if not self.replication.should_replicate(content.size_bytes):
            return
        nns = self.name_node_for_content(request.content_id)
        targets: List[str] = []
        primary = request.primary_server or ""
        for _ in range(self.config.replication.extra_replicas):
            target = nns.plan_replication(request.content_id, self.server_ids(), self.sim.now)
            if target is None or target in targets:
                break
            targets.append(target)
        tasks = self.replication.plan(request.content_id, content.size_bytes, primary, targets)
        for task in tasks:
            self.sim.call_in(task.start_after_s, self._start_replication_flow, task, request)

    def _start_replication_flow(
        self, task: ReplicationTask, request: Optional[RequestRecord] = None
    ) -> None:
        if not (
            self.is_server_active(task.source_server)
            and self.is_server_active(task.target_server)
        ):
            # An endpoint departed between planning and the transfer start;
            # re-check the content's replication level against the servers
            # that remain.
            self.replication.mark_cancelled(task)
            self._replan_repair(task.content_id)
            return
        source = self._server_node(task.source_server)
        target = self._server_node(task.target_server)
        meta = {
            "role": "replication",
            "content_id": task.content_id,
            "target_server": task.target_server,
        }
        if request is not None:
            meta["request_id"] = request.request_id
        try:
            flow = self.fabric.start_flow(
                src=source,
                dst=target,
                size_bytes=task.size_bytes,
                kind=FlowKind.REPLICATION,
                meta=meta,
            )
        except NoPathError:
            # The endpoints are disconnected right now; dropping the task
            # (without re-planning) avoids a plan/fail loop while the
            # partition lasts.
            self.replication.mark_cancelled(task)
            return
        if request is not None:
            request.replication_flows.append(flow)
        self._replication_tasks_by_flow[flow.flow_id] = task

    # -- churn (block servers leaving and rejoining) --------------------------------------------------
    def deactivate_server(self, server_id: str) -> int:
        """A block server leaves the cluster (crash, drain, maintenance).

        * it disappears from the placement candidate set (``server_ids``),
        * its replicas are dropped from the name-node metadata (reads stop
          resolving to it),
        * every in-flight transfer touching it is aborted (the affected
          client requests count into :attr:`requests_disrupted`), and
        * content left below its desired replica count is re-replicated from
          a surviving replica onto a fresh target.

        Returns the number of repair transfers planned.  A no-op (returning
        0) when the server already departed; unknown ids raise ``KeyError``.
        """
        server = self.block_servers[server_id]
        if server_id in self._inactive_servers:
            return 0
        self._inactive_servers.add(server_id)
        self.servers_departed += 1

        # Metadata first: the blocks are shared objects, so dropping the
        # replica entries here updates every NNS block map at once.
        for block in server.blocks():
            block.remove_replica(server_id)

        # Abort transfers touching the departed node (the abort callback
        # handles the per-request and per-task bookkeeping).
        # The snapshot can go stale mid-loop: the first abort advances the
        # fluid state, which may finish other flows in it — skip anything no
        # longer active.
        node_id = server.node.node_id
        for flow in list(self.fabric.active_flows):
            if flow.state is not FlowState.ACTIVE:
                continue
            if flow.src.node_id == node_id or flow.dst.node_id == node_id:
                self.fabric.abort_flow(flow)

        return self._repair_under_replicated(server_id)

    def reactivate_server(self, server_id: str) -> None:
        """A departed block server rejoins with its stored blocks intact."""
        server = self.block_servers[server_id]
        if server_id not in self._inactive_servers:
            return
        self._inactive_servers.discard(server_id)
        self.servers_rejoined += 1
        for block in server.blocks():
            block.add_replica(server_id)

    @property
    def _desired_replicas(self) -> int:
        return 1 + (
            self.config.replication.extra_replicas
            if self.config.replication.enabled
            else 0
        )

    def _repair_under_replicated(self, departed_id: str) -> int:
        """Re-replicate content the departure left under its replica target."""
        server = self.block_servers[departed_id]
        before = self.replication.re_replications_planned
        for content_id in server.stored_content_ids():
            self._replan_repair(content_id)
        return self.replication.re_replications_planned - before

    def _replan_repair(self, content_id: str) -> None:
        """Plan one repair transfer if ``content_id`` is under-replicated.

        A no-op when the content is unknown, still at its desired replica
        count, has no surviving full copy to source from, or no eligible
        target remains.
        """
        nns = self.name_node_for_content(content_id)
        if not nns.knows(content_id):
            return
        record = nns.record_of(content_id)
        holders = [
            s
            for s in record.block_map.servers_with_full_copy()
            if self.is_server_active(s)
        ]
        if not holders or len(holders) >= self._desired_replicas:
            # Nothing to copy from, or still sufficiently replicated.
            return
        candidates = [s for s in self.server_ids() if s not in holders]
        if not candidates:
            return
        target = self.placement.select_replica(record.content, candidates, holders[0])
        if target is None or target in holders:
            return
        task = self.replication.plan_repair(
            content_id, record.content.size_bytes, holders[0], target
        )
        self.sim.call_in(task.start_after_s, self._start_replication_flow, task)

    # -- flow completion dispatch ---------------------------------------------------------------------
    def _on_flow_finished(self, flow: Flow, now: float) -> None:
        task = self._replication_tasks_by_flow.pop(flow.flow_id, None)
        if task is not None:
            self._complete_replication(task)
            return
        request = self._requests_by_flow.pop(flow.flow_id, None)
        if request is None:
            return
        role = flow.meta.get("role")
        if role == "client-write":
            self._complete_write(request, flow, now)
        elif role == "client-read":
            request.completed_at = now
            if self.on_request_completed is not None:
                self.on_request_completed(request)

    def _on_flow_aborted(self, flow: Flow, now: float) -> None:
        task = self._replication_tasks_by_flow.pop(flow.flow_id, None)
        if task is not None:
            # The transfer died (churn or link failure); re-check the
            # content's replication level so a surviving replica pair can
            # take over — otherwise the content would silently stay under
            # its target for the rest of the run.
            self.replication.mark_cancelled(task)
            self._replan_repair(task.content_id)
            return
        request = self._requests_by_flow.pop(flow.flow_id, None)
        if request is not None and not request.completed:
            self.requests_disrupted += 1

    def _complete_write(self, request: RequestRecord, flow: Flow, now: float) -> None:
        primary = request.primary_server
        nns = self.name_node_for_content(request.content_id)
        if primary is not None:
            server = self.block_servers[primary]
            for block in nns.record_of(request.content_id).block_map:
                if not server.has_block(block.block_id):
                    server.store_block(block)
            nns.commit_write(request.content_id, primary)
        request.completed_at = now
        if self.on_request_completed is not None:
            self.on_request_completed(request)
        self._schedule_replication(request)

    def _complete_replication(self, task: ReplicationTask) -> None:
        nns = self.name_node_for_content(task.content_id)
        server = self.block_servers.get(task.target_server)
        if server is not None and self.is_server_active(task.target_server):
            for block in nns.record_of(task.content_id).block_map:
                if not server.has_block(block.block_id):
                    server.store_block(block)
            nns.commit_replica(task.content_id, task.target_server)
        self.replication.mark_completed(task)

    # -- reporting ------------------------------------------------------------------------------------
    def completed_requests(self, kind: Optional[str] = None) -> List[RequestRecord]:
        """Requests that have finished (optionally filtered by 'write'/'read')."""
        return [
            r
            for r in self.requests
            if r.completed and (kind is None or r.kind == kind)
        ]

    def pending_requests(self) -> List[RequestRecord]:
        """Requests still waiting for their data flow to finish."""
        return [r for r in self.requests if not r.completed]

    def replica_distribution(self) -> Dict[str, int]:
        """Number of stored blocks per block server."""
        return {sid: len(bs.blocks()) for sid, bs in self.block_servers.items()}
