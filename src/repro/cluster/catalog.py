"""Built-in placement-policy registrations.

Placement builders follow the convention ``builder(context) ->
PlacementPolicy`` where ``context`` is a
:class:`~repro.cluster.placement.PlacementContext`; policies that need the
fabric or the SCDA controller raise a :class:`~repro.registry.RegistryError`
when the context lacks them.
"""

from __future__ import annotations

from repro.cluster.placement import (
    LeastLoadedPlacement,
    PlacementContext,
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    ScdaPlacement,
)
from repro.registry import PLACEMENTS, RegistryError


def _build_random(context: PlacementContext) -> PlacementPolicy:
    return RandomPlacement(seed=context.seed)


def _build_round_robin(context: PlacementContext) -> PlacementPolicy:
    return RoundRobinPlacement()


def _build_least_loaded(context: PlacementContext) -> PlacementPolicy:
    if context.fabric is None:
        raise RegistryError("placement 'least-loaded' requires a fabric in the context")
    return LeastLoadedPlacement(context.fabric)


def _build_scda(context: PlacementContext) -> PlacementPolicy:
    if context.controller is None:
        raise RegistryError("placement 'scda' requires an ScdaController in the context")
    return ScdaPlacement(context.controller)


PLACEMENTS.register(
    "random",
    _build_random,
    description="uniform random server selection (the RandTCP baseline)",
)

PLACEMENTS.register(
    "round-robin",
    _build_round_robin,
    description="cycle through the servers in order",
)

PLACEMENTS.register(
    "least-loaded",
    _build_least_loaded,
    description="fewest active flows wins (needs the fabric)",
)

PLACEMENTS.register(
    "scda",
    _build_scda,
    description="SCDA's content-aware RM/RA-driven selection (needs the controller)",
)
