"""Replication management (Section VIII-B).

Once a client has written content to the block server offering the best write
rate, that server replicates the content to another server chosen so that
future reads are fast (and, for passive content, so that dormant servers stay
dormant).  The :class:`ReplicationManager` decides *whether*, *when* and *how
many times* to replicate; the :class:`~repro.cluster.cluster.StorageCluster`
executes the resulting transfer as an internal flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ReplicationConfig:
    """Replication policy knobs."""

    enabled: bool = True
    #: number of replicas to create beyond the primary copy
    extra_replicas: int = 1
    #: delay between the client write finishing and replication starting
    start_delay_s: float = 0.0
    #: replicate only content at least this large (small control exchanges
    #: are not worth replicating)
    min_size_bytes: float = 64 * 1024.0

    def __post_init__(self) -> None:
        if self.extra_replicas < 0:
            raise ValueError("extra_replicas must be non-negative")
        if self.start_delay_s < 0:
            raise ValueError("start_delay_s must be non-negative")
        if self.min_size_bytes < 0:
            raise ValueError("min_size_bytes must be non-negative")


@dataclass
class ReplicationTask:
    """One planned replication transfer."""

    content_id: str
    source_server: str
    target_server: str
    size_bytes: float
    start_after_s: float = 0.0


class ReplicationManager:
    """Plans replication transfers after each successful write."""

    def __init__(self, config: Optional[ReplicationConfig] = None) -> None:
        self.config = config or ReplicationConfig()
        self.tasks_planned = 0
        self.tasks_completed = 0

    def should_replicate(self, size_bytes: float) -> bool:
        """Whether content of this size gets replicated at all."""
        return (
            self.config.enabled
            and self.config.extra_replicas > 0
            and size_bytes >= self.config.min_size_bytes
        )

    def plan(
        self,
        content_id: str,
        size_bytes: float,
        primary_server: str,
        chosen_targets: Sequence[str],
    ) -> List[ReplicationTask]:
        """Create the replication tasks for one freshly written content item.

        ``chosen_targets`` are the servers already picked by the placement
        policy (one per extra replica); targets equal to the primary or
        duplicated are dropped.
        """
        if not self.should_replicate(size_bytes):
            return []
        tasks: List[ReplicationTask] = []
        seen = {primary_server}
        for target in chosen_targets:
            if target in seen:
                continue
            seen.add(target)
            tasks.append(
                ReplicationTask(
                    content_id=content_id,
                    source_server=primary_server,
                    target_server=target,
                    size_bytes=size_bytes,
                    start_after_s=self.config.start_delay_s,
                )
            )
            if len(tasks) >= self.config.extra_replicas:
                break
        self.tasks_planned += len(tasks)
        return tasks

    def mark_completed(self, task: ReplicationTask) -> None:
        """Account a finished replication transfer."""
        self.tasks_completed += 1
