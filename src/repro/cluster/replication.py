"""Replication management (Section VIII-B).

Once a client has written content to the block server offering the best write
rate, that server replicates the content to another server chosen so that
future reads are fast (and, for passive content, so that dormant servers stay
dormant).  The :class:`ReplicationManager` decides *whether*, *when* and *how
many times* to replicate; the :class:`~repro.cluster.cluster.StorageCluster`
executes the resulting transfer as an internal flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ReplicationConfig:
    """Replication policy knobs."""

    enabled: bool = True
    #: number of replicas to create beyond the primary copy
    extra_replicas: int = 1
    #: delay between the client write finishing and replication starting
    start_delay_s: float = 0.0
    #: replicate only content at least this large (small control exchanges
    #: are not worth replicating)
    min_size_bytes: float = 64 * 1024.0

    def __post_init__(self) -> None:
        if self.extra_replicas < 0:
            raise ValueError("extra_replicas must be non-negative")
        if self.start_delay_s < 0:
            raise ValueError("start_delay_s must be non-negative")
        if self.min_size_bytes < 0:
            raise ValueError("min_size_bytes must be non-negative")


@dataclass
class ReplicationTask:
    """One planned replication transfer.

    ``kind`` distinguishes the write-path replication of Section VIII-B
    (``"replica"``) from the re-replication a block-server departure triggers
    (``"repair"``, see :meth:`ReplicationManager.plan_repair`).
    """

    content_id: str
    source_server: str
    target_server: str
    size_bytes: float
    start_after_s: float = 0.0
    kind: str = "replica"


class ReplicationManager:
    """Plans replication transfers after each successful write.

    Every planned task is tracked until :meth:`mark_completed` accounts it,
    so completion bookkeeping is symmetric with planning: completing a task
    the manager never planned (or completing one twice) is reported instead
    of silently inflating the counters.
    """

    def __init__(self, config: Optional[ReplicationConfig] = None) -> None:
        self.config = config or ReplicationConfig()
        self.tasks_planned = 0
        self.tasks_completed = 0
        self.tasks_cancelled = 0
        self.re_replications_planned = 0
        self.re_replications_completed = 0
        #: planned-but-not-yet-completed tasks, keyed by object identity (a
        #: task object stays referenced by its in-flight transfer, so the id
        #: cannot be recycled while the entry lives).
        self._outstanding: dict = {}

    @property
    def outstanding_tasks(self) -> List[ReplicationTask]:
        """Tasks planned but not yet marked completed."""
        return list(self._outstanding.values())

    def should_replicate(self, size_bytes: float) -> bool:
        """Whether content of this size gets replicated at all."""
        return (
            self.config.enabled
            and self.config.extra_replicas > 0
            and size_bytes >= self.config.min_size_bytes
        )

    def plan(
        self,
        content_id: str,
        size_bytes: float,
        primary_server: str,
        chosen_targets: Sequence[str],
    ) -> List[ReplicationTask]:
        """Create the replication tasks for one freshly written content item.

        ``chosen_targets`` are the servers already picked by the placement
        policy (one per extra replica); targets equal to the primary or
        duplicated are dropped.
        """
        if not self.should_replicate(size_bytes):
            return []
        tasks: List[ReplicationTask] = []
        seen = {primary_server}
        for target in chosen_targets:
            if target in seen:
                continue
            seen.add(target)
            tasks.append(
                ReplicationTask(
                    content_id=content_id,
                    source_server=primary_server,
                    target_server=target,
                    size_bytes=size_bytes,
                    start_after_s=self.config.start_delay_s,
                )
            )
            if len(tasks) >= self.config.extra_replicas:
                break
        self.tasks_planned += len(tasks)
        for task in tasks:
            self._outstanding[id(task)] = task
        return tasks

    def plan_repair(
        self,
        content_id: str,
        size_bytes: float,
        source_server: str,
        target_server: str,
    ) -> ReplicationTask:
        """Create one re-replication task for content left under-replicated.

        Used by the churn wiring: when a block server departs, each content
        item that dropped below its desired replica count is copied from a
        surviving replica to a fresh target.  Repairs ignore the
        ``enabled``/``min_size_bytes`` policy knobs — they restore durability
        that existed already rather than create new replicas.
        """
        if target_server == source_server:
            raise ValueError("repair target must differ from the source replica")
        task = ReplicationTask(
            content_id=content_id,
            source_server=source_server,
            target_server=target_server,
            size_bytes=size_bytes,
            start_after_s=self.config.start_delay_s,
            kind="repair",
        )
        self.re_replications_planned += 1
        self._outstanding[id(task)] = task
        return task

    def mark_cancelled(self, task: ReplicationTask) -> bool:
        """Drop an outstanding task that will never finish (transfer aborted,
        or its source/target server departed before the flow could start).
        Returns False for a task that was not outstanding."""
        if self._outstanding.pop(id(task), None) is None:
            return False
        self.tasks_cancelled += 1
        return True

    def mark_completed(self, task: ReplicationTask) -> bool:
        """Account a finished replication transfer.

        Returns True when ``task`` was an outstanding planned task; an
        unknown (never planned, or already completed) task is ignored and
        reported as False so callers cannot double-count.
        """
        if self._outstanding.pop(id(task), None) is None:
            return False
        self.tasks_completed += 1
        if task.kind == "repair":
            self.re_replications_completed += 1
        return True
