"""Host-side resource contention: disks and CPUs as the bottleneck.

Section VI-A of the paper: the RM caps the advertised link rates with
``R_other`` — "a function of the CPU and disk loads.  If either the available
CPU speed or disk speed are too low, R_other decreases accordingly ... The CPU
and disk usage can be profiled to get what CPU and/or usage can serve what
link rate.  This approach allows SCDA to be a multi-resource allocation
mechanism."

:class:`HostResourceSimulator` provides exactly that profile: each block
server has a disk with finite sequential bandwidth and a CPU with finite
request-processing throughput; the achievable network rate is the minimum of
what the disk and CPU can sustain given the server's concurrent transfers and
background load.  The simulator plugs into the controller through the
standard :class:`~repro.core.monitors.OtherResourceModel` interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.monitors import OtherResourceModel
from repro.network.fabric import FabricSimulator
from repro.network.flow import FlowKind


@dataclass
class HostResourceProfile:
    """Static capability of one server's local resources."""

    #: sequential disk bandwidth available for content reads/writes
    disk_bandwidth_bps: float = 6.0e9        # ~750 MB/s NVMe-class
    #: network rate one fully-available CPU core can push (copy/checksum/TLS)
    cpu_rate_per_core_bps: float = 4.0e9
    cores: int = 8
    #: fraction of CPU permanently consumed by background/compute tasks
    background_cpu_fraction: float = 0.0
    #: fraction of disk bandwidth consumed by background tasks (compaction, scrubbing)
    background_disk_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.disk_bandwidth_bps <= 0 or self.cpu_rate_per_core_bps <= 0:
            raise ValueError("disk and CPU rates must be positive")
        if self.cores < 1:
            raise ValueError("need at least one core")
        for fraction in (self.background_cpu_fraction, self.background_disk_fraction):
            if not (0.0 <= fraction < 1.0):
                raise ValueError("background fractions must be in [0, 1)")

    @property
    def available_cpu_rate_bps(self) -> float:
        """Aggregate network rate the CPUs can serve after background load."""
        return self.cpu_rate_per_core_bps * self.cores * (1.0 - self.background_cpu_fraction)

    @property
    def available_disk_rate_bps(self) -> float:
        """Disk bandwidth left after background I/O."""
        return self.disk_bandwidth_bps * (1.0 - self.background_disk_fraction)


class HostResourceSimulator(OtherResourceModel):
    """Derives per-host ``R_other`` limits from disk/CPU profiles and live load.

    The limit exposed for a host is the *per-direction* rate its local
    resources can sustain: ``min(disk, cpu)`` divided between the transfers
    currently using the host (every byte written or read crosses both the
    disk and the CPU once).  Hosts without an explicit profile use the
    ``default_profile``.
    """

    def __init__(
        self,
        fabric: Optional[FabricSimulator] = None,
        default_profile: Optional[HostResourceProfile] = None,
    ) -> None:
        super().__init__()
        self.fabric = fabric
        self.default_profile = default_profile or HostResourceProfile()
        self._profiles: Dict[str, HostResourceProfile] = {}

    # -- configuration -----------------------------------------------------------------
    def set_profile(self, host_id: str, profile: HostResourceProfile) -> None:
        """Assign an explicit resource profile to one host."""
        self._profiles[host_id] = profile

    def profile_of(self, host_id: str) -> HostResourceProfile:
        """The profile governing ``host_id`` (default when not set)."""
        return self._profiles.get(host_id, self.default_profile)

    def attach_fabric(self, fabric: FabricSimulator) -> None:
        """Bind to the fabric whose active flows define the live load."""
        self.fabric = fabric

    # -- the OtherResourceModel interface -------------------------------------------------
    def concurrent_transfers(self, host_id: str) -> int:
        """Number of active flows that read from or write to ``host_id``."""
        if self.fabric is None:
            return 0
        return sum(
            1
            for flow in self.fabric.active_flows
            if host_id in (flow.src.node_id, flow.dst.node_id)
        )

    def sustainable_rate_bps(self, host_id: str) -> float:
        """Aggregate rate the host's disk+CPU can sustain right now."""
        profile = self.profile_of(host_id)
        return min(profile.available_disk_rate_bps, profile.available_cpu_rate_bps)

    def limits(self, host_id: str, now: float = 0.0) -> Tuple[float, float]:
        """Per-flow (uplink, downlink) caps for ``host_id``.

        The sustainable aggregate rate is shared by the host's concurrent
        transfers; with no transfers the full rate is available (a new flow
        should see the headroom, not zero).
        """
        aggregate = self.sustainable_rate_bps(host_id)
        share = aggregate / max(1, self.concurrent_transfers(host_id))
        return share, share
