"""Storage cluster substrate: the GFS/HDFS-like distributed file system.

SCDA's data plane (Section III-A): a light-weight front-end server (FES)
forwards client requests to one of *several* name-node servers (NNS), which
keep the metadata mapping content to blocks to block servers (BS).  Block
servers store the data and replicate it to other block servers chosen by the
server-selection policy.

* :mod:`~repro.cluster.content` — content model and activity classification
  (Section II-B).
* :mod:`~repro.cluster.block` — blocks and the block map of a content item.
* :mod:`~repro.cluster.block_server` — block servers (storage, power state).
* :mod:`~repro.cluster.name_node` — name nodes (metadata, placement).
* :mod:`~repro.cluster.front_end` — the FES hashing/forwarding tier.
* :mod:`~repro.cluster.client` — user clients (UCL).
* :mod:`~repro.cluster.placement` — placement policies (random baseline,
  SCDA, round-robin, least-loaded).
* :mod:`~repro.cluster.replication` — replication management.
* :mod:`~repro.cluster.cluster` — :class:`StorageCluster`, the facade that
  executes the request-serving protocols of Section VIII on the fabric.
"""

from repro.cluster.content import (
    Content,
    ContentClass,
    ContentClassifier,
    AccessStats,
)
from repro.cluster.block import Block, BlockMap
from repro.cluster.block_server import BlockServer
from repro.cluster.name_node import NameNodeServer
from repro.cluster.front_end import FrontEndServer
from repro.cluster.client import UserClient
from repro.cluster.placement import (
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    LeastLoadedPlacement,
    ScdaPlacement,
)
from repro.cluster.replication import ReplicationManager, ReplicationConfig
from repro.cluster.host_resources import HostResourceProfile, HostResourceSimulator
from repro.cluster.cluster import StorageCluster, StorageClusterConfig, RequestRecord

__all__ = [
    "Content",
    "ContentClass",
    "ContentClassifier",
    "AccessStats",
    "Block",
    "BlockMap",
    "BlockServer",
    "NameNodeServer",
    "FrontEndServer",
    "UserClient",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "ScdaPlacement",
    "ReplicationManager",
    "ReplicationConfig",
    "HostResourceProfile",
    "HostResourceSimulator",
    "StorageCluster",
    "StorageClusterConfig",
    "RequestRecord",
]
