"""Name-node servers (NNS): the metadata tier.

Each NNS keeps, for the contents hashed to it,

* the block map (content -> blocks -> replica servers),
* the content descriptor (size, declared/learned class, access stats), and
* the placement decisions, delegated to a :class:`PlacementPolicy`.

Unlike GFS/HDFS there are *several* NNSs behind the FES, so the metadata load
is spread; the FES (or an NNS-side agent) routes each request to the NNS
responsible for its key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.block import Block, BlockMap
from repro.cluster.content import Content, ContentClass, ContentClassifier
from repro.cluster.placement import PlacementError, PlacementPolicy


class UnknownContentError(KeyError):
    """Raised when an NNS is asked about content it has no metadata for."""


@dataclass
class ContentRecord:
    """Everything one NNS knows about one content item."""

    content: Content
    block_map: BlockMap
    primary_server: Optional[str] = None


class NameNodeServer:
    """One metadata server."""

    def __init__(
        self,
        nns_id: str,
        placement: PlacementPolicy,
        classifier: Optional[ContentClassifier] = None,
        block_size_bytes: float = 64 * 1024 * 1024.0,
    ) -> None:
        if block_size_bytes <= 0:
            raise ValueError("block size must be positive")
        self.nns_id = nns_id
        self.placement = placement
        self.classifier = classifier or ContentClassifier()
        self.block_size_bytes = float(block_size_bytes)
        self._records: Dict[str, ContentRecord] = {}
        self.write_requests = 0
        self.read_requests = 0
        self.replication_requests = 0

    # -- metadata --------------------------------------------------------------------------
    def knows(self, content_id: str) -> bool:
        """True if this NNS holds metadata for ``content_id``."""
        return content_id in self._records

    def record_of(self, content_id: str) -> ContentRecord:
        """The metadata record (raises :class:`UnknownContentError` if absent)."""
        try:
            return self._records[content_id]
        except KeyError:
            raise UnknownContentError(content_id) from None

    def contents(self) -> List[str]:
        """All content ids managed by this NNS."""
        return list(self._records)

    @property
    def metadata_entries(self) -> int:
        """Number of (content, block) metadata entries held."""
        return sum(len(rec.block_map) for rec in self._records.values())

    # -- request handling --------------------------------------------------------------------
    def register_write(
        self, content: Content, candidates: Sequence[str], now: float
    ) -> ContentRecord:
        """Handle an external write request: pick the primary BS, create metadata."""
        self.write_requests += 1
        content.stats.record_write(now)
        record = self._records.get(content.content_id)
        if record is None:
            record = ContentRecord(
                content=content,
                block_map=BlockMap(content.content_id, content.size_bytes, self.block_size_bytes),
            )
            self._records[content.content_id] = record
        primary = self.placement.select_primary(content, candidates)
        record.primary_server = primary
        return record

    def commit_write(self, content_id: str, server_id: str) -> None:
        """The write finished: record the replicas on ``server_id``."""
        record = self.record_of(content_id)
        for block in record.block_map:
            block.add_replica(server_id)

    def plan_replication(
        self, content_id: str, candidates: Sequence[str], now: float
    ) -> Optional[str]:
        """Pick the replica target for freshly written content (Section VIII-B).

        Returns None when no distinct candidate exists (single-server cluster).
        """
        self.replication_requests += 1
        record = self.record_of(content_id)
        primary = record.primary_server or ""
        pool = [c for c in candidates if c != primary]
        if not pool:
            return None
        return self.placement.select_replica(record.content, candidates, primary)

    def commit_replica(self, content_id: str, server_id: str) -> None:
        """The replication transfer finished: add the replica to the metadata."""
        self.commit_write(content_id, server_id)

    def resolve_read(self, content_id: str, now: float) -> str:
        """Handle an external read: pick the replica with the best read rate."""
        self.read_requests += 1
        record = self.record_of(content_id)
        record.content.stats.record_read(now)
        replicas = record.block_map.servers_with_full_copy() or record.block_map.servers()
        if not replicas:
            raise PlacementError(f"content {content_id} has no stored replicas yet")
        return self.placement.select_read_source(record.content, replicas)

    def content_class(self, content_id: str) -> ContentClass:
        """Current (declared or learned) class of the content."""
        return self.classifier.classify(self.record_of(content_id).content)
