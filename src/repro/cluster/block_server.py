"""Block servers (BS): the storage nodes of the cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.block import Block
from repro.network.topology import Node


class StorageFullError(Exception):
    """Raised when a block server has no room for a block."""


class BlockServer:
    """A storage server bound to a host node of the topology.

    The server tracks the blocks it stores, its remaining disk capacity and
    simple access counters; the energy model (``repro.energy``) and the RM
    attach to the same host id.
    """

    def __init__(
        self,
        node: Node,
        disk_capacity_bytes: float = 4e12,
        disk_bandwidth_bps: float = float("inf"),
    ) -> None:
        if disk_capacity_bytes <= 0:
            raise ValueError("disk capacity must be positive")
        if disk_bandwidth_bps <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.node = node
        self.server_id = node.node_id
        self.disk_capacity_bytes = float(disk_capacity_bytes)
        self.disk_bandwidth_bps = float(disk_bandwidth_bps)
        self.used_bytes = 0.0
        self._blocks: Dict[str, Block] = {}
        #: content_id -> number of accesses served by this BS (used to learn popularity)
        self.access_counts: Dict[str, int] = {}
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    # -- capacity -----------------------------------------------------------------------
    @property
    def free_bytes(self) -> float:
        """Remaining disk capacity."""
        return self.disk_capacity_bytes - self.used_bytes

    @property
    def utilisation(self) -> float:
        """Fraction of the disk in use."""
        return self.used_bytes / self.disk_capacity_bytes

    def can_store(self, size_bytes: float) -> bool:
        """True if a block of ``size_bytes`` fits."""
        return size_bytes <= self.free_bytes + 1e-9

    # -- block management ------------------------------------------------------------------
    def store_block(self, block: Block) -> None:
        """Store a replica of ``block`` on this server."""
        if block.block_id in self._blocks:
            return
        if not self.can_store(block.size_bytes):
            raise StorageFullError(
                f"{self.server_id}: cannot store {block.block_id} "
                f"({block.size_bytes:.0f} B needed, {self.free_bytes:.0f} B free)"
            )
        self._blocks[block.block_id] = block
        self.used_bytes += block.size_bytes
        self.bytes_written += block.size_bytes
        block.add_replica(self.server_id)

    def evict_block(self, block_id: str) -> Optional[Block]:
        """Remove a block replica (returns it, or None if not present)."""
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self.used_bytes -= block.size_bytes
            block.remove_replica(self.server_id)
        return block

    def has_block(self, block_id: str) -> bool:
        """True if this server holds a replica of ``block_id``."""
        return block_id in self._blocks

    def blocks(self) -> List[Block]:
        """All block replicas held by this server."""
        return list(self._blocks.values())

    def stored_content_ids(self) -> List[str]:
        """Content ids with at least one block on this server."""
        seen: List[str] = []
        for block in self._blocks.values():
            if block.content_id not in seen:
                seen.append(block.content_id)
        return seen

    # -- access accounting ---------------------------------------------------------------------
    def record_read(self, content_id: str, size_bytes: float) -> None:
        """Account a read of ``content_id`` served from this server."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        self.access_counts[content_id] = self.access_counts.get(content_id, 0) + 1
        self.bytes_read += size_bytes

    def popularity(self, content_id: str) -> int:
        """Number of accesses of ``content_id`` served by this server."""
        return self.access_counts.get(content_id, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BlockServer {self.server_id} blocks={len(self._blocks)} "
            f"used={self.used_bytes / 1e9:.2f}GB>"
        )
