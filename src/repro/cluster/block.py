"""Blocks: the unit of storage and replication.

Like GFS/HDFS, SCDA stores content as fixed-size blocks; the name nodes keep
the map from content to blocks to the block servers holding each replica.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Block:
    """One block of a content item."""

    block_id: str
    content_id: str
    index: int
    size_bytes: float
    #: block-server ids currently holding a replica of this block
    replicas: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("block size must be positive")
        if self.index < 0:
            raise ValueError("block index must be non-negative")

    def add_replica(self, server_id: str) -> None:
        """Record that ``server_id`` now holds this block."""
        if server_id not in self.replicas:
            self.replicas.append(server_id)

    def remove_replica(self, server_id: str) -> None:
        """Record that ``server_id`` no longer holds this block."""
        if server_id in self.replicas:
            self.replicas.remove(server_id)

    @property
    def replica_count(self) -> int:
        return len(self.replicas)


class BlockMap:
    """The block manifest of one content item."""

    def __init__(self, content_id: str, content_size_bytes: float, block_size_bytes: float) -> None:
        if content_size_bytes <= 0:
            raise ValueError("content size must be positive")
        if block_size_bytes <= 0:
            raise ValueError("block size must be positive")
        self.content_id = content_id
        self.block_size_bytes = float(block_size_bytes)
        self.blocks: List[Block] = []
        count = max(1, int(math.ceil(content_size_bytes / block_size_bytes)))
        remaining = float(content_size_bytes)
        for index in range(count):
            size = min(block_size_bytes, remaining)
            self.blocks.append(
                Block(
                    block_id=f"{content_id}/blk-{index}",
                    content_id=content_id,
                    index=index,
                    size_bytes=size,
                )
            )
            remaining -= size

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    @property
    def total_bytes(self) -> float:
        """Sum of block sizes (equals the content size)."""
        return sum(b.size_bytes for b in self.blocks)

    def block(self, index: int) -> Block:
        """The block at position ``index``."""
        return self.blocks[index]

    def servers(self) -> List[str]:
        """All block servers holding at least one block of the content."""
        seen: List[str] = []
        for block in self.blocks:
            for server in block.replicas:
                if server not in seen:
                    seen.append(server)
        return seen

    def servers_with_full_copy(self) -> List[str]:
        """Block servers holding *every* block of the content."""
        if not self.blocks:
            return []
        candidates = set(self.blocks[0].replicas)
        for block in self.blocks[1:]:
            candidates &= set(block.replicas)
        # Preserve the deterministic order of the first block's replica list.
        return [s for s in self.blocks[0].replicas if s in candidates]

    def min_replication(self) -> int:
        """The smallest replica count over all blocks."""
        if not self.blocks:
            return 0
        return min(b.replica_count for b in self.blocks)
