"""The front-end server (FES) tier.

The FES is the light-weight entry point that removes the single-name-node
bottleneck of GFS/HDFS: it hashes the client (or content) identifier and
forwards the request to the responsible NNS — ``hash(id) mod N_NNS`` in the
paper.  The FES keeps no per-request state, so it can be replicated freely
(the paper also allows FES agents to live at the clients or the NNSs; the
hashing logic is identical in all three deployments, so one class covers
them).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence


def stable_hash(key: str) -> int:
    """A deterministic, platform-independent 64-bit hash of ``key``.

    Python's builtin ``hash`` is salted per process, which would make
    placement non-reproducible across runs; SHA-1 truncation is stable.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FrontEndServer:
    """Hashes request keys onto name nodes."""

    def __init__(self, name_node_ids: Sequence[str], fes_id: str = "fes-0") -> None:
        if not name_node_ids:
            raise ValueError("FES needs at least one name node")
        self.fes_id = fes_id
        self.name_node_ids: List[str] = list(name_node_ids)
        self.requests_forwarded = 0

    @property
    def num_name_nodes(self) -> int:
        return len(self.name_node_ids)

    def route(self, key: str) -> str:
        """The NNS responsible for ``key`` (``hash(key) mod N_NNS``)."""
        index = stable_hash(key) % len(self.name_node_ids)
        self.requests_forwarded += 1
        return self.name_node_ids[index]

    def route_client(self, client_id: str) -> str:
        """Route by client id (external write/read requests, Section VIII-A/C)."""
        return self.route(f"client:{client_id}")

    def route_content(self, content_id: str) -> str:
        """Route by content id (internal replication requests, Section VIII-B)."""
        return self.route(f"content:{content_id}")

    def load_per_name_node(self, keys: Sequence[str]) -> dict:
        """How many of ``keys`` map to each NNS (for balance diagnostics)."""
        counts = {nns: 0 for nns in self.name_node_ids}
        for key in keys:
            counts[self.name_node_ids[stable_hash(key) % len(self.name_node_ids)]] += 1
        return counts
