"""User clients (UCL): the external requesters of cloud storage services."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.topology import Node


@dataclass
class UserClient:
    """An external client attached to the datacenter through an access link."""

    node: Node
    client_id: str = ""
    #: content ids this client has written (its "library")
    owned_content: List[str] = field(default_factory=list)
    requests_issued: int = 0

    def __post_init__(self) -> None:
        if not self.client_id:
            self.client_id = self.node.node_id

    def record_write(self, content_id: str) -> None:
        """Remember a content item written by this client."""
        if content_id not in self.owned_content:
            self.owned_content.append(content_id)
        self.requests_issued += 1

    def record_read(self) -> None:
        """Account a read request issued by this client."""
        self.requests_issued += 1
