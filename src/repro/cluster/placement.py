"""Placement policies: which block server receives a write / serves a read.

The policy is the *other half* of the paper's comparison (besides rate
control):

* :class:`RandomPlacement` — the baseline: uniform random server selection,
  the behaviour of VL2's VLB/ECMP-style placement and of Hedera for mice
  flows ("RandTCP" when combined with the TCP transport);
* :class:`ScdaPlacement` — delegates to the SCDA controller's content-aware,
  rate-metric-driven selection (Section VII);
* :class:`RoundRobinPlacement` and :class:`LeastLoadedPlacement` — common
  engineering baselines used in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.cluster.content import Content, ContentClass, ContentClassifier


class PlacementError(Exception):
    """Raised when a policy cannot pick a server."""


@dataclass
class PlacementContext:
    """Runtime handles a placement builder may need.

    The placement registry's builders receive one of these instead of
    positional arguments, so policies that need nothing (``round-robin``),
    a seed (``random``), the fabric (``least-loaded``) or the controller
    (``scda``) all share a single construction signature.
    """

    seed: int = 0
    fabric: Any = None
    controller: Any = None


class PlacementPolicy:
    """Interface: choose primary, replica and read-source servers."""

    name = "base"

    def select_primary(self, content: Content, candidates: Sequence[str]) -> str:
        """The server that receives the client's write."""
        raise NotImplementedError

    def select_replica(
        self, content: Content, candidates: Sequence[str], primary: str
    ) -> str:
        """The server that receives the replica (must differ from primary if possible)."""
        pool = [c for c in candidates if c != primary] or list(candidates)
        return self.select_primary(content, pool)

    def select_read_source(self, content: Content, replicas: Sequence[str]) -> str:
        """Which replica serves a read."""
        if not replicas:
            raise PlacementError(f"content {content.content_id} has no replicas")
        return self.select_primary(content, replicas)


class RandomPlacement(PlacementPolicy):
    """Uniform random selection (the RandTCP baseline's placement)."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None, seed: int = 0) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def select_primary(self, content: Content, candidates: Sequence[str]) -> str:
        if not candidates:
            raise PlacementError("no candidate servers")
        return list(candidates)[int(self.rng.integers(0, len(candidates)))]


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through the servers in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select_primary(self, content: Content, candidates: Sequence[str]) -> str:
        if not candidates:
            raise PlacementError("no candidate servers")
        pool = list(candidates)
        choice = pool[self._next % len(pool)]
        self._next += 1
        return choice


class LeastLoadedPlacement(PlacementPolicy):
    """Pick the server with the fewest active flows (simple load balancing).

    Needs a fabric to inspect; the load of a server is the number of active
    flows whose source or destination is that server's host.
    """

    name = "least-loaded"

    def __init__(self, fabric) -> None:
        if fabric is None:
            raise ValueError("LeastLoadedPlacement requires a fabric")
        self.fabric = fabric

    def _load(self, server_id: str) -> int:
        return sum(
            1
            for flow in self.fabric.active_flows
            if flow.src.node_id == server_id or flow.dst.node_id == server_id
        )

    def select_primary(self, content: Content, candidates: Sequence[str]) -> str:
        if not candidates:
            raise PlacementError("no candidate servers")
        pool = list(candidates)
        loads = [self._load(c) for c in pool]
        return pool[int(np.argmin(loads))]


class ScdaPlacement(PlacementPolicy):
    """SCDA's content-aware selection, backed by the controller's RM/RA rates."""

    name = "scda"

    def __init__(self, controller, classifier: Optional[ContentClassifier] = None) -> None:
        if controller is None:
            raise ValueError("ScdaPlacement requires an ScdaController")
        self.controller = controller
        self.classifier = classifier or ContentClassifier()

    def _class_of(self, content: Content) -> ContentClass:
        return self.classifier.classify(content)

    def select_primary(self, content: Content, candidates: Sequence[str]) -> str:
        if not candidates:
            raise PlacementError("no candidate servers")
        return self.controller.select_primary(self._class_of(content), list(candidates))

    def select_replica(self, content: Content, candidates: Sequence[str], primary: str) -> str:
        if not candidates:
            raise PlacementError("no candidate servers")
        return self.controller.select_replica(
            self._class_of(content), list(candidates), primary_id=primary
        )

    def select_read_source(self, content: Content, replicas: Sequence[str]) -> str:
        if not replicas:
            raise PlacementError(f"content {content.content_id} has no replicas")
        return self.controller.select_read_source(self._class_of(content), list(replicas))
