"""Empirical CDFs (the FCT CDF figures)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` of the empirical CDF of ``values``.

    ``x`` is the sorted sample; ``F(x)`` steps from 1/n to 1.  Empty input
    yields two empty arrays.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return np.array([]), np.array([])
    x = np.sort(arr)
    y = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return x, y


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` that are <= ``threshold``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    return float(np.mean(arr <= threshold))


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100])."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(arr, q))


def stochastic_dominance_fraction(
    better: Sequence[float], worse: Sequence[float], grid_points: int = 50
) -> float:
    """Fraction of a common grid where CDF(better) >= CDF(worse).

    1.0 means the 'better' sample stochastically dominates the 'worse' one
    everywhere on the grid (its CDF is above, i.e. it finishes faster); the
    shape checks in the experiment harness use this to compare FCT CDFs.
    """
    a = np.asarray(list(better), dtype=float)
    b = np.asarray(list(worse), dtype=float)
    if a.size == 0 or b.size == 0:
        return float("nan")
    if grid_points < 2:
        raise ValueError("grid_points must be >= 2")
    hi = max(a.max(), b.max())
    lo = min(a.min(), b.min())
    grid = np.linspace(lo, hi, grid_points)
    dominance = [cdf_at(a, g) >= cdf_at(b, g) - 1e-12 for g in grid]
    return float(np.mean(dominance))
