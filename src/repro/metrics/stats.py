"""Replication statistics: means, stddevs and 95 % confidence intervals.

Everything the repo measured before this module was a single-seed point
estimate.  The replication layer (:mod:`repro.exec.replication`) fans one
scenario out over N derived seeds; this module is the aggregation half —
how N per-replicate numbers become "mean ± CI".

Two interval methods are provided, selectable everywhere a CI is computed:

* ``normal`` — the normal approximation ``mean ± z * s / sqrt(n)`` with the
  sample standard deviation ``s`` (ddof=1).  Cheap, exact for Gaussian
  replicate noise, the default.
* ``bootstrap`` — the percentile bootstrap of the mean: resample the n
  replicate values with replacement ``n_resamples`` times and take the
  ``alpha/2`` and ``1 - alpha/2`` quantiles of the resampled means.  Makes
  no distributional assumption; the resampling RNG is seeded through
  :func:`repro.sim.random.derive_seed`, so the interval is a pure function
  of ``(values, confidence, n_resamples, seed)`` — bit-identical across
  processes and platforms, like every other number in the repo.

Non-finite values (a NaN speedup from a degenerate tiny-scale replicate)
are excluded before aggregation; :attr:`SummaryStats.n` reports how many
values actually entered the statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.sim.random import derive_seed

#: Default confidence level for every interval in the analysis layer.
DEFAULT_CONFIDENCE = 0.95

#: Default resample count for the percentile bootstrap.
DEFAULT_BOOTSTRAP_RESAMPLES = 2000

#: The CI methods :func:`summarize` accepts.
CI_METHODS = ("normal", "bootstrap")


def _finite(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(values), dtype=float)
    return array[np.isfinite(array)]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of the finite values (NaN when none are finite)."""
    finite = _finite(values)
    if finite.size == 0:
        return float("nan")
    return float(np.mean(finite))


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1) of the finite values.

    Zero for fewer than two finite values: a single replicate carries no
    spread information, and 0.0 keeps ``mean ± half_width`` well-defined
    (the N=1 interval collapses onto the point estimate).
    """
    finite = _finite(values)
    if finite.size < 2:
        return 0.0
    return float(np.std(finite, ddof=1))


def z_value(confidence: float) -> float:
    """The two-sided standard-normal quantile for ``confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(NormalDist().inv_cdf(0.5 + confidence / 2.0))


def normal_ci(
    values: Sequence[float], confidence: float = DEFAULT_CONFIDENCE
) -> Tuple[float, float]:
    """Normal-approximation CI of the mean: ``mean ± z * s / sqrt(n)``."""
    finite = _finite(values)
    center = mean(finite)
    if finite.size < 2 or not np.isfinite(center):
        return (center, center)
    half = z_value(confidence) * stddev(finite) / float(np.sqrt(finite.size))
    return (center - half, center + half)


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    n_resamples: int = DEFAULT_BOOTSTRAP_RESAMPLES,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI of the mean.

    Deterministic: the resampling generator is seeded with
    ``derive_seed(seed, "bootstrap")``, so two calls with equal arguments
    return bit-identical bounds on any platform.
    """
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    finite = _finite(values)
    if finite.size == 0:
        return (float("nan"), float("nan"))
    if finite.size == 1:
        return (float(finite[0]), float(finite[0]))
    rng = np.random.default_rng(derive_seed(seed, "bootstrap"))
    indices = rng.integers(0, finite.size, size=(int(n_resamples), finite.size))
    resampled_means = finite[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(resampled_means, alpha)),
        float(np.quantile(resampled_means, 1.0 - alpha)),
    )


@dataclass(frozen=True)
class SummaryStats:
    """One aggregated metric: point estimate, spread and interval.

    ``n`` counts the *finite* values that entered the statistic; ``method``
    records which interval construction produced the bounds so a serialised
    artifact is self-describing.
    """

    mean: float
    std: float
    n: int
    ci_lower: float
    ci_upper: float
    confidence: float = DEFAULT_CONFIDENCE
    method: str = "normal"

    @property
    def half_width(self) -> float:
        """Half the CI width — the "± x" of "mean ± x"."""
        return (self.ci_upper - self.ci_lower) / 2.0

    def __str__(self) -> str:
        if self.n <= 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; :meth:`from_dict` round-trips losslessly."""
        return {
            "mean": float(self.mean),
            "std": float(self.std),
            "n": int(self.n),
            "ci_lower": float(self.ci_lower),
            "ci_upper": float(self.ci_upper),
            "confidence": float(self.confidence),
            "method": str(self.method),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SummaryStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            mean=float(data["mean"]),
            std=float(data["std"]),
            n=int(data["n"]),
            ci_lower=float(data["ci_lower"]),
            ci_upper=float(data["ci_upper"]),
            confidence=float(data.get("confidence", DEFAULT_CONFIDENCE)),
            method=str(data.get("method", "normal")),
        )


def summarize(
    values: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "normal",
    seed: int = 0,
    n_resamples: int = DEFAULT_BOOTSTRAP_RESAMPLES,
) -> SummaryStats:
    """Aggregate per-replicate values into a :class:`SummaryStats`.

    ``method`` selects the interval: ``"normal"`` (default) or
    ``"bootstrap"`` (percentile, deterministic under ``seed``).
    """
    if method not in CI_METHODS:
        raise ValueError(f"unknown CI method {method!r}; expected one of {CI_METHODS}")
    finite = _finite(values)
    if method == "bootstrap":
        lower, upper = bootstrap_ci(
            finite, confidence=confidence, n_resamples=n_resamples, seed=seed
        )
    else:
        lower, upper = normal_ci(finite, confidence=confidence)
    return SummaryStats(
        mean=mean(finite),
        std=stddev(finite),
        n=int(finite.size),
        ci_lower=lower,
        ci_upper=upper,
        confidence=float(confidence),
        method=method,
    )
