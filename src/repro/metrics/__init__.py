"""Metrics: everything the paper's figures plot.

* :mod:`~repro.metrics.records` — per-flow completion records.
* :mod:`~repro.metrics.collector` — attaches to a fabric, records completions
  and samples instantaneous throughput.
* :mod:`~repro.metrics.fct` — FCT statistics and AFCT-by-file-size binning
  (Figures 9, 12, 13, 15).
* :mod:`~repro.metrics.throughput` — average instantaneous throughput time
  series (Figures 7, 10, 17).
* :mod:`~repro.metrics.cdf` — empirical CDFs (Figures 8, 11, 14, 16, 18).
* :mod:`~repro.metrics.comparison` — side-by-side summaries of two schemes
  (SCDA vs RandTCP) with the speedup ratios the paper quotes.
* :mod:`~repro.metrics.stats` — replication statistics: means, stddevs and
  95 % confidence intervals (normal approximation or percentile bootstrap).
* :mod:`~repro.metrics.replication` — multi-seed ensembles:
  :class:`ReplicatedResult` over per-replicate :class:`SchemeResult` s and
  the CI-carrying :class:`ReplicatedComparison`.
"""

from repro.metrics.records import FlowRecord
from repro.metrics.collector import MetricsCollector
from repro.metrics.fct import FctStatistics, afct_by_size_bins, average_fct
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.metrics.cdf import empirical_cdf, cdf_at, percentile
from repro.metrics.comparison import SchemeResult, ComparisonResult
from repro.metrics.stats import SummaryStats, bootstrap_ci, normal_ci, summarize
from repro.metrics.replication import ReplicatedComparison, ReplicatedResult

__all__ = [
    "FlowRecord",
    "MetricsCollector",
    "FctStatistics",
    "afct_by_size_bins",
    "average_fct",
    "ThroughputSample",
    "ThroughputSeries",
    "empirical_cdf",
    "cdf_at",
    "percentile",
    "SchemeResult",
    "ComparisonResult",
    "SummaryStats",
    "summarize",
    "normal_ci",
    "bootstrap_ci",
    "ReplicatedResult",
    "ReplicatedComparison",
]
