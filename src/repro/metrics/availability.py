"""Availability/disruption time series (the dynamics layer's metrics).

Sampled by the :class:`~repro.metrics.collector.MetricsCollector` on the same
periodic timer as the throughput series: how many links are down, what
fraction of the fabric is up, and the cumulative counts of flows the dynamics
layer rerouted or aborted.  On a static world every sample is the trivial
"all up, nothing disrupted", so results with and without an (empty) dynamics
script stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np


@dataclass
class AvailabilitySample:
    """One sampling instant of fabric availability."""

    time_s: float
    #: links currently failed
    links_down: int
    #: all directed links in the topology
    links_total: int
    #: cumulative flows moved to a surviving path after a link failure
    flows_rerouted: int
    #: cumulative flows aborted (failure with no surviving path, or churn)
    flows_aborted: int

    @property
    def availability(self) -> float:
        """Fraction of the fabric's links that are up at this instant."""
        if self.links_total <= 0:
            return 1.0
        return 1.0 - self.links_down / self.links_total

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict of this sample."""
        return {
            "time_s": float(self.time_s),
            "links_down": int(self.links_down),
            "links_total": int(self.links_total),
            "flows_rerouted": int(self.flows_rerouted),
            "flows_aborted": int(self.flows_aborted),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AvailabilitySample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(**dict(data))


class AvailabilitySeries:
    """An ordered collection of :class:`AvailabilitySample`."""

    def __init__(self) -> None:
        self.samples: List[AvailabilitySample] = []

    def add(self, sample: AvailabilitySample) -> None:
        """Append a sample (samples must arrive in time order)."""
        if self.samples and sample.time_s < self.samples[-1].time_s:
            raise ValueError("availability samples must be added in time order")
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def times(self) -> np.ndarray:
        """Sampling instants."""
        return np.array([s.time_s for s in self.samples], dtype=float)

    def availability(self) -> np.ndarray:
        """Per-sample link availability fraction."""
        return np.array([s.availability for s in self.samples], dtype=float)

    def mean_availability(self) -> float:
        """Time-average link availability (1.0 on a static world)."""
        if not self.samples:
            return 1.0
        return float(np.mean([s.availability for s in self.samples]))

    def disrupted_time_s(self) -> float:
        """Total sampled time during which at least one link was down."""
        if len(self.samples) < 2:
            return 0.0
        total = 0.0
        for prev, cur in zip(self.samples, self.samples[1:]):
            if prev.links_down > 0:
                total += cur.time_s - prev.time_s
        return total

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, availability fraction)`` for plotting."""
        return self.times(), self.availability()

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The whole series as a plain JSON-safe dict."""
        return {"samples": [s.to_dict() for s in self.samples]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AvailabilitySeries":
        """Rebuild a series from :meth:`to_dict` output (lossless)."""
        series = cls()
        for sample in data.get("samples", ()):
            series.add(AvailabilitySample.from_dict(sample))
        return series

    def merged_with(self, other: "AvailabilitySeries") -> "AvailabilitySeries":
        """A new series interleaving both sample sets in time order."""
        merged = AvailabilitySeries()
        for sample in sorted(
            list(self.samples) + list(other.samples), key=lambda s: s.time_s
        ):
            merged.add(sample)
        return merged
