"""Side-by-side comparison of two schemes (SCDA vs RandTCP).

The paper's headline numbers are ratios — "content transfer time about 50 %
lower", "throughput higher by up to 60 %" — so the comparison object exposes
exactly those ratios, computed from the per-scheme records and throughput
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.metrics.availability import AvailabilitySeries
from repro.metrics.cdf import empirical_cdf, stochastic_dominance_fraction
from repro.metrics.fct import (
    FctStatistics,
    afct_by_size_bins,
    average_fct,
    record_multiplicities,
)
from repro.metrics.records import FlowRecord
from repro.metrics.throughput import ThroughputSeries


@dataclass
class SchemeResult:
    """Everything measured for one scheme in one scenario."""

    scheme: str
    records: List[FlowRecord] = field(default_factory=list)
    throughput: ThroughputSeries = field(default_factory=ThroughputSeries)
    #: link availability / disruption series (trivial on a static world)
    availability: AvailabilitySeries = field(default_factory=AvailabilitySeries)
    sla_violations: int = 0
    wall_clock_s: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    # -- flow statistics ------------------------------------------------------------------
    def fcts(self) -> np.ndarray:
        """Completion times, expanded per session.

        A discrete record contributes one entry; an aggregate record of
        multiplicity N contributes N identical entries, so downstream
        statistics see the same population as N discrete flows would give.
        """
        arr = np.array([r.fct_s for r in self.records], dtype=float)
        reps = record_multiplicities(self.records)
        if reps is None:
            return arr
        return np.repeat(arr, reps)

    def fct_statistics(self) -> FctStatistics:
        """Summary statistics of the completion times."""
        return FctStatistics.from_fcts(self.fcts())

    def mean_fct_s(self) -> float:
        """Average completion time."""
        return average_fct(self.records)

    def mean_throughput_kBps(self) -> float:
        """Average instantaneous per-flow throughput in KB/s.

        This is the time-series metric the throughput figures plot (the mean
        of the active flows' instantaneous rates at each sampling instant).
        It is sensitive to how many slow flows are in flight at the sampling
        instants; for a per-flow summary that is easier to compare across
        schemes use :meth:`mean_goodput_kBps`.
        """
        return self.throughput.average_mean_flow_kBps()

    def mean_goodput_kBps(self) -> float:
        """Session-weighted mean goodput (flow size / FCT), in KB/s."""
        if not self.records:
            return 0.0
        goodputs = np.array([r.goodput_bps for r in self.records], dtype=float)
        reps = record_multiplicities(self.records)
        if reps is not None:
            goodputs = np.repeat(goodputs, reps)
        return float(np.mean(goodputs)) / 8.0 / 1024.0

    def fct_cdf(self):
        """``(x, F(x))`` of the FCT CDF."""
        return empirical_cdf(self.fcts())

    def afct_curve(self, bin_edges_bytes: Sequence[float]):
        """AFCT-vs-size curve for this scheme."""
        return afct_by_size_bins(self.records, bin_edges_bytes)

    @property
    def completed_flows(self) -> int:
        return len(self.records)

    @property
    def completed_sessions(self) -> int:
        """Total user sessions completed (Σ multiplicity over the records)."""
        return int(sum(r.multiplicity for r in self.records))

    # -- serialisation / merging ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict holding everything measured (lossless).

        Floats survive a ``json.dumps``/``loads`` round-trip exactly (Python
        serialises them via ``repr``), so ``from_dict(json.loads(...))``
        rebuilds a bit-identical result — which is what lets results cross
        process boundaries and live in a
        :class:`~repro.exec.store.ResultStore`.
        """
        return {
            "scheme": self.scheme,
            "records": [r.to_dict() for r in self.records],
            "throughput": self.throughput.to_dict(),
            "availability": self.availability.to_dict(),
            "sla_violations": int(self.sla_violations),
            "wall_clock_s": float(self.wall_clock_s),
            "extras": {str(k): float(v) for k, v in self.extras.items()},
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus the volatile wall-clock measurement.

        Two runs of the same :class:`~repro.exec.job.ExperimentJob` — on any
        executor backend, in any process — produce equal canonical dicts;
        only the host-dependent wall-clock timing is dropped.
        """
        data = self.to_dict()
        del data["wall_clock_s"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchemeResult":
        """Rebuild a result from :meth:`to_dict` (or canonical) output."""
        return cls(
            scheme=str(data["scheme"]),
            records=[FlowRecord.from_dict(r) for r in data.get("records", ())],
            throughput=ThroughputSeries.from_dict(data.get("throughput", {})),
            availability=AvailabilitySeries.from_dict(data.get("availability", {})),
            sla_violations=int(data.get("sla_violations", 0)),
            wall_clock_s=float(data.get("wall_clock_s", 0.0)),
            extras={str(k): float(v) for k, v in data.get("extras", {}).items()},
        )

    def merge(self, other: "SchemeResult") -> "SchemeResult":
        """Combine two partial results of the *same* scheme into one.

        Records are concatenated, throughput samples interleaved in time
        order, and the counters (SLA violations, wall clock, numeric extras)
        summed — except extras named ``*_max``, which combine by maximum
        (summing per-shard maxima would fabricate a value no shard saw).
        This is the reduction step when one logical experiment is sharded
        across workers.
        """
        if other.scheme != self.scheme:
            raise ValueError(
                f"cannot merge results of different schemes "
                f"({self.scheme!r} vs {other.scheme!r})"
            )
        extras = dict(self.extras)
        for key, value in other.extras.items():
            if key in extras and key.endswith("_max"):
                extras[key] = max(extras[key], value)
            else:
                extras[key] = extras.get(key, 0.0) + value
        return SchemeResult(
            scheme=self.scheme,
            records=list(self.records) + list(other.records),
            throughput=self.throughput.merged_with(other.throughput),
            availability=self.availability.merged_with(other.availability),
            sla_violations=self.sla_violations + other.sla_violations,
            wall_clock_s=self.wall_clock_s + other.wall_clock_s,
            extras=extras,
        )


@dataclass
class ComparisonResult:
    """SCDA (candidate) against a baseline, for one scenario."""

    scenario: str
    candidate: SchemeResult
    baseline: SchemeResult

    # -- headline ratios -------------------------------------------------------------------
    def speedup_afct(self) -> float:
        """``AFCT(baseline) / AFCT(candidate)`` — >1 means the candidate is faster."""
        base = self.baseline.mean_fct_s()
        cand = self.candidate.mean_fct_s()
        if not np.isfinite(base) or not np.isfinite(cand) or cand <= 0:
            return float("nan")
        return base / cand

    def fct_reduction_fraction(self) -> float:
        """Fraction by which the candidate reduces the mean FCT (the paper's ~0.5)."""
        speedup = self.speedup_afct()
        if not np.isfinite(speedup) or speedup <= 0:
            return float("nan")
        return 1.0 - 1.0 / speedup

    def throughput_gain_fraction(self) -> float:
        """Relative gain in average instantaneous throughput (the paper's up-to-0.6)."""
        base = self.baseline.mean_throughput_kBps()
        cand = self.candidate.mean_throughput_kBps()
        if base <= 0:
            return float("nan")
        return cand / base - 1.0

    def goodput_gain_fraction(self) -> float:
        """Relative gain in mean per-flow goodput (size / FCT).

        Less sensitive to sampling effects than
        :meth:`throughput_gain_fraction`; roughly tracks the FCT speedup.
        """
        base = self.baseline.mean_goodput_kBps()
        cand = self.candidate.mean_goodput_kBps()
        if base <= 0:
            return float("nan")
        return cand / base - 1.0

    def median_fct_ratio(self) -> float:
        """``median FCT(baseline) / median FCT(candidate)``."""
        base = self.baseline.fct_statistics().median_s
        cand = self.candidate.fct_statistics().median_s
        if not np.isfinite(base) or not np.isfinite(cand) or cand <= 0:
            return float("nan")
        return base / cand

    def cdf_dominance(self) -> float:
        """Fraction of the FCT range where the candidate's CDF is above the baseline's."""
        return stochastic_dominance_fraction(self.candidate.fcts(), self.baseline.fcts())

    # -- serialisation ---------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict of the full comparison (lossless)."""
        return {
            "scenario": self.scenario,
            "candidate": self.candidate.to_dict(),
            "baseline": self.baseline.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComparisonResult":
        """Rebuild a comparison from :meth:`to_dict` output."""
        return cls(
            scenario=str(data["scenario"]),
            candidate=SchemeResult.from_dict(data["candidate"]),
            baseline=SchemeResult.from_dict(data["baseline"]),
        )

    @classmethod
    def replicated(
        cls,
        scenario: str,
        seeds: Sequence[int],
        candidate_results: Sequence["SchemeResult"],
        baseline_results: Sequence["SchemeResult"],
    ):
        """The multi-seed variant of this comparison.

        Returns a :class:`~repro.metrics.replication.ReplicatedComparison`
        whose speedup/gain fractions carry confidence bounds; replicate *i*
        of each scheme must have run under ``seeds[i]``.  (Lazy import:
        :mod:`repro.metrics.replication` builds on this module.)
        """
        from repro.metrics.replication import ReplicatedComparison

        return ReplicatedComparison.from_results(
            scenario, seeds, candidate_results, baseline_results
        )

    def summary(self) -> Dict[str, float]:
        """All headline numbers in one dict (written into EXPERIMENTS.md)."""
        return {
            "candidate_mean_fct_s": self.candidate.mean_fct_s(),
            "baseline_mean_fct_s": self.baseline.mean_fct_s(),
            "speedup_afct": self.speedup_afct(),
            "fct_reduction_fraction": self.fct_reduction_fraction(),
            "candidate_mean_thpt_kBps": self.candidate.mean_throughput_kBps(),
            "baseline_mean_thpt_kBps": self.baseline.mean_throughput_kBps(),
            "throughput_gain_fraction": self.throughput_gain_fraction(),
            "candidate_mean_goodput_kBps": self.candidate.mean_goodput_kBps(),
            "baseline_mean_goodput_kBps": self.baseline.mean_goodput_kBps(),
            "goodput_gain_fraction": self.goodput_gain_fraction(),
            "median_fct_ratio": self.median_fct_ratio(),
            "cdf_dominance": self.cdf_dominance(),
            "candidate_flows": float(self.candidate.completed_flows),
            "baseline_flows": float(self.baseline.completed_flows),
        }
