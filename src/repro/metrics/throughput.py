"""Instantaneous-throughput time series (Figures 7, 10 and 17)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np


@dataclass
class ThroughputSample:
    """One sampling instant."""

    time_s: float
    active_flows: int
    #: total bytes delivered since the previous sample, expressed as bits/s
    aggregate_bps: float
    #: mean of the active flows' instantaneous rates at the sampling instant
    mean_flow_bps: float

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict of this sample."""
        return {
            "time_s": float(self.time_s),
            "active_flows": int(self.active_flows),
            "aggregate_bps": float(self.aggregate_bps),
            "mean_flow_bps": float(self.mean_flow_bps),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ThroughputSample":
        """Rebuild a sample from :meth:`to_dict` output."""
        return cls(**dict(data))

    @property
    def mean_flow_kBps(self) -> float:
        """Mean per-flow throughput in KB/s (the unit of the paper's figures)."""
        return self.mean_flow_bps / 8.0 / 1024.0

    @property
    def aggregate_kBps(self) -> float:
        """Aggregate delivered throughput in KB/s."""
        return self.aggregate_bps / 8.0 / 1024.0


class ThroughputSeries:
    """An ordered collection of :class:`ThroughputSample`."""

    def __init__(self) -> None:
        self.samples: List[ThroughputSample] = []

    def add(self, sample: ThroughputSample) -> None:
        """Append a sample (samples must arrive in time order)."""
        if self.samples and sample.time_s < self.samples[-1].time_s:
            raise ValueError("throughput samples must be added in time order")
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def times(self) -> np.ndarray:
        """Sampling instants."""
        return np.array([s.time_s for s in self.samples], dtype=float)

    def mean_flow_kBps(self) -> np.ndarray:
        """Per-sample mean per-flow throughput in KB/s."""
        return np.array([s.mean_flow_kBps for s in self.samples], dtype=float)

    def aggregate_kBps(self) -> np.ndarray:
        """Per-sample aggregate throughput in KB/s."""
        return np.array([s.aggregate_kBps for s in self.samples], dtype=float)

    def average_mean_flow_kBps(self) -> float:
        """Time-average of the per-flow instantaneous throughput.

        Samples with no active flows are excluded, matching how the paper's
        plots only show instants where flows exist.
        """
        values = [s.mean_flow_kBps for s in self.samples if s.active_flows > 0]
        return float(np.mean(values)) if values else 0.0

    def average_aggregate_kBps(self) -> float:
        """Time-average of the aggregate delivered throughput."""
        if not self.samples:
            return 0.0
        return float(np.mean([s.aggregate_kBps for s in self.samples]))

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, mean per-flow KB/s)`` — the series the figures plot."""
        return self.times(), self.mean_flow_kBps()

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The whole series as a plain JSON-safe dict."""
        return {"samples": [s.to_dict() for s in self.samples]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ThroughputSeries":
        """Rebuild a series from :meth:`to_dict` output (lossless)."""
        series = cls()
        for sample in data.get("samples", ()):
            series.add(ThroughputSample.from_dict(sample))
        return series

    def merged_with(self, other: "ThroughputSeries") -> "ThroughputSeries":
        """A new series interleaving both sample sets in time order.

        Used when partial results from different workers are combined into
        one :class:`~repro.metrics.comparison.SchemeResult`.
        """
        merged = ThroughputSeries()
        for sample in sorted(
            list(self.samples) + list(other.samples), key=lambda s: s.time_s
        ):
            merged.add(sample)
        return merged
