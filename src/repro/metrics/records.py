"""Per-flow completion records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.network.flow import Flow, FlowKind


@dataclass(frozen=True)
class FlowRecord:
    """An immutable summary of one finished flow.

    ``multiplicity`` carries how many identical user sessions the flow
    aggregated (1 = a plain discrete flow); ``size_bytes`` stays per-session,
    so the record describes each of the N sessions and summary statistics
    weight it by N.  ``tenant`` is an opaque label ("" = untagged) used for
    per-tenant breakdowns.
    """

    flow_id: int
    size_bytes: float
    created_at_s: float
    started_at_s: float
    finished_at_s: float
    kind: FlowKind
    src: str
    dst: str
    multiplicity: int = 1
    tenant: str = ""

    def __post_init__(self) -> None:
        if int(self.multiplicity) != self.multiplicity or self.multiplicity < 1:
            raise ValueError("multiplicity must be a positive integer")

    @property
    def fct_s(self) -> float:
        """Flow completion time, including any setup latency before the flow started."""
        return self.finished_at_s - self.created_at_s

    @property
    def transfer_time_s(self) -> float:
        """Pure transfer time (excluding setup latency)."""
        return self.finished_at_s - self.started_at_s

    @property
    def goodput_bps(self) -> float:
        """Average delivered rate of one session over the flow's lifetime."""
        if self.fct_s <= 0:
            return float("inf")
        return self.size_bytes * 8.0 / self.fct_s

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; the enum kind is stored by value."""
        return {
            "flow_id": int(self.flow_id),
            "size_bytes": float(self.size_bytes),
            "created_at_s": float(self.created_at_s),
            "started_at_s": float(self.started_at_s),
            "finished_at_s": float(self.finished_at_s),
            "kind": self.kind.value,
            "src": self.src,
            "dst": self.dst,
            "multiplicity": int(self.multiplicity),
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowRecord":
        """Rebuild a record from :meth:`to_dict` output (lossless).

        Payloads stored before aggregate flows existed lack the
        ``multiplicity``/``tenant`` fields; they default to a discrete,
        untagged flow.
        """
        fields = dict(data)
        fields["kind"] = FlowKind(fields["kind"])
        fields.setdefault("multiplicity", 1)
        fields.setdefault("tenant", "")
        return cls(**fields)

    @classmethod
    def from_flow(cls, flow: Flow) -> "FlowRecord":
        """Build a record from a finished flow."""
        if flow.finished_at is None or flow.started_at is None:
            raise ValueError(f"flow {flow.flow_id} has not finished")
        return cls(
            flow_id=flow.flow_id,
            size_bytes=flow.size_bytes,
            created_at_s=flow.created_at,
            started_at_s=flow.started_at,
            finished_at_s=flow.finished_at,
            kind=flow.kind,
            src=flow.src.node_id,
            dst=flow.dst.node_id,
            multiplicity=flow.multiplicity,
            tenant=flow.tenant,
        )
