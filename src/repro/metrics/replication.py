"""Multi-seed replication aggregates over :class:`SchemeResult`.

A :class:`ReplicatedResult` holds one scheme's measurements across N
replicates of the same scenario (same spec, seeds derived per replicate —
see :func:`repro.exec.planner.plan_replications`); a
:class:`ReplicatedComparison` is the replicated variant of
:class:`~repro.metrics.comparison.ComparisonResult`, pairing candidate and
baseline ensembles so the headline speedup/gain fractions carry confidence
bounds instead of being single-seed point estimates.

Both types round-trip losslessly through ``to_dict``/``from_dict`` (their
per-replicate :class:`SchemeResult` payloads already do), so an ensemble can
cross process boundaries, live in a :class:`~repro.exec.store.ResultStore`,
or be rebuilt from one by the :data:`~repro.registry.ANALYSES` plugins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.metrics.stats import DEFAULT_CONFIDENCE, SummaryStats, summarize


@dataclass
class ReplicatedResult:
    """One scheme measured across N replicates of the same scenario.

    Attributes
    ----------
    scheme:
        The scheme's display name (``"SCDA"``, ``"RandTCP"``, ...).
    seeds:
        The master seed each replicate ran under, in replicate order.
    results:
        One :class:`SchemeResult` per replicate, aligned with :attr:`seeds`.
    """

    scheme: str
    seeds: List[int] = field(default_factory=list)
    results: List[SchemeResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.results:
            raise ValueError("a ReplicatedResult needs at least one replicate")
        if len(self.seeds) != len(self.results):
            raise ValueError(
                f"seeds and results must align ({len(self.seeds)} seeds "
                f"vs {len(self.results)} results)"
            )
        for result in self.results:
            if result.scheme != self.scheme:
                raise ValueError(
                    f"replicate of scheme {result.scheme!r} in a "
                    f"{self.scheme!r} ensemble"
                )

    @property
    def n_replicates(self) -> int:
        """How many replicates the ensemble holds."""
        return len(self.results)

    # -- per-seed metric vectors -------------------------------------------------------
    def per_seed(self, metric: Callable[[SchemeResult], float]) -> np.ndarray:
        """``metric`` evaluated on every replicate, in replicate order."""
        return np.array([metric(result) for result in self.results], dtype=float)

    def per_seed_mean_fct_s(self) -> np.ndarray:
        """Each replicate's mean flow completion time."""
        return self.per_seed(lambda r: r.mean_fct_s())

    def per_seed_mean_throughput_kBps(self) -> np.ndarray:
        """Each replicate's average instantaneous throughput."""
        return self.per_seed(lambda r: r.mean_throughput_kBps())

    def per_seed_mean_goodput_kBps(self) -> np.ndarray:
        """Each replicate's mean per-flow goodput."""
        return self.per_seed(lambda r: r.mean_goodput_kBps())

    def per_seed_mean_availability(self) -> np.ndarray:
        """Each replicate's time-average link availability (1.0 when static)."""
        return self.per_seed(lambda r: r.availability.mean_availability())

    # -- aggregated statistics ---------------------------------------------------------
    def _stats(
        self, values: np.ndarray, confidence: float, method: str
    ) -> SummaryStats:
        return summarize(values, confidence=confidence, method=method)

    def fct_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """Mean FCT across replicates, with a CI."""
        return self._stats(self.per_seed_mean_fct_s(), confidence, method)

    def throughput_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """Mean instantaneous throughput across replicates, with a CI."""
        return self._stats(self.per_seed_mean_throughput_kBps(), confidence, method)

    def goodput_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """Mean per-flow goodput across replicates, with a CI."""
        return self._stats(self.per_seed_mean_goodput_kBps(), confidence, method)

    def availability_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """Mean link availability across replicates, with a CI."""
        return self._stats(self.per_seed_mean_availability(), confidence, method)

    # -- pooling -----------------------------------------------------------------------
    def pooled(self) -> SchemeResult:
        """All replicates merged into one :class:`SchemeResult`.

        Records concatenate and counters sum (see
        :meth:`SchemeResult.merge`), so pooled CDFs weight every flow
        equally regardless of which replicate produced it.
        """
        merged = self.results[0]
        for result in self.results[1:]:
            merged = merged.merge(result)
        return merged

    def pooled_fcts(self) -> np.ndarray:
        """Every replicate's flow completion times, concatenated."""
        return np.concatenate([result.fcts() for result in self.results])

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; :meth:`from_dict` round-trips losslessly."""
        return {
            "scheme": self.scheme,
            "seeds": [int(seed) for seed in self.seeds],
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplicatedResult":
        """Rebuild an ensemble from :meth:`to_dict` output."""
        return cls(
            scheme=str(data["scheme"]),
            seeds=[int(seed) for seed in data.get("seeds", ())],
            results=[SchemeResult.from_dict(r) for r in data.get("results", ())],
        )


@dataclass
class ReplicatedComparison:
    """Candidate vs baseline, replicated: the CI-carrying comparison.

    Replicate *i* of the candidate and replicate *i* of the baseline ran
    under the same derived seed — i.e. saw the identical workload — so the
    per-replicate ratios (:meth:`ComparisonResult.speedup_afct` and
    friends) are paired observations, and their spread across replicates is
    what the confidence intervals here quantify.
    """

    scenario: str
    candidate: ReplicatedResult
    baseline: ReplicatedResult

    def __post_init__(self) -> None:
        if self.candidate.n_replicates != self.baseline.n_replicates:
            raise ValueError(
                f"candidate has {self.candidate.n_replicates} replicates but "
                f"baseline has {self.baseline.n_replicates}"
            )
        if self.candidate.seeds != self.baseline.seeds:
            raise ValueError(
                "candidate and baseline replicates must pair up on the same "
                f"seeds (got {self.candidate.seeds} vs {self.baseline.seeds})"
            )

    @property
    def n_replicates(self) -> int:
        """How many paired replicates the comparison holds."""
        return self.candidate.n_replicates

    def comparisons(self) -> List[ComparisonResult]:
        """One single-seed :class:`ComparisonResult` per replicate."""
        return [
            ComparisonResult(
                scenario=self.scenario, candidate=cand, baseline=base
            )
            for cand, base in zip(self.candidate.results, self.baseline.results)
        ]

    # -- CI-carrying headline numbers --------------------------------------------------
    def metric_stats(
        self,
        metric: Callable[[ComparisonResult], float],
        confidence: float = DEFAULT_CONFIDENCE,
        method: str = "normal",
    ) -> SummaryStats:
        """``metric`` evaluated per replicate, aggregated into mean ± CI."""
        values = [metric(comparison) for comparison in self.comparisons()]
        return summarize(values, confidence=confidence, method=method)

    def speedup_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """AFCT speedup across replicates, with a CI."""
        return self.metric_stats(
            lambda c: c.speedup_afct(), confidence=confidence, method=method
        )

    def fct_reduction_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """FCT reduction fraction across replicates, with a CI."""
        return self.metric_stats(
            lambda c: c.fct_reduction_fraction(), confidence=confidence, method=method
        )

    def throughput_gain_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """Throughput gain fraction across replicates, with a CI."""
        return self.metric_stats(
            lambda c: c.throughput_gain_fraction(), confidence=confidence, method=method
        )

    def goodput_gain_stats(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> SummaryStats:
        """Goodput gain fraction across replicates, with a CI."""
        return self.metric_stats(
            lambda c: c.goodput_gain_fraction(), confidence=confidence, method=method
        )

    def summary(
        self, confidence: float = DEFAULT_CONFIDENCE, method: str = "normal"
    ) -> Dict[str, Dict[str, Any]]:
        """Every headline metric of :meth:`ComparisonResult.summary`, replicated.

        Same keys as the single-seed summary; every value is a
        :meth:`SummaryStats.to_dict` payload (mean, std, n, CI bounds), so
        the replicated and single-seed summaries are easy to line up.
        """
        per_replicate: Dict[str, List[float]] = {}
        for comparison in self.comparisons():
            for key, value in comparison.summary().items():
                per_replicate.setdefault(key, []).append(float(value))
        return {
            key: summarize(values, confidence=confidence, method=method).to_dict()
            for key, values in per_replicate.items()
        }

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; :meth:`from_dict` round-trips losslessly."""
        return {
            "scenario": self.scenario,
            "candidate": self.candidate.to_dict(),
            "baseline": self.baseline.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplicatedComparison":
        """Rebuild a replicated comparison from :meth:`to_dict` output."""
        return cls(
            scenario=str(data["scenario"]),
            candidate=ReplicatedResult.from_dict(data["candidate"]),
            baseline=ReplicatedResult.from_dict(data["baseline"]),
        )

    @classmethod
    def from_results(
        cls,
        scenario: str,
        seeds: Sequence[int],
        candidate_results: Sequence[SchemeResult],
        baseline_results: Sequence[SchemeResult],
    ) -> "ReplicatedComparison":
        """Assemble a replicated comparison from aligned per-replicate results."""
        seeds = [int(seed) for seed in seeds]
        if not candidate_results or not baseline_results:
            raise ValueError("need at least one replicate per scheme")
        return cls(
            scenario=scenario,
            candidate=ReplicatedResult(
                scheme=candidate_results[0].scheme,
                seeds=list(seeds),
                results=list(candidate_results),
            ),
            baseline=ReplicatedResult(
                scheme=baseline_results[0].scheme,
                seeds=list(seeds),
                results=list(baseline_results),
            ),
        )
