"""Flow-completion-time statistics and AFCT-by-size binning.

The paper defines AFCT for a size bin as "the average completion times of all
flows with that size which finish within simulation time" (Figures 9, 12, 13
and 15 plot AFCT against file size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.records import FlowRecord


@dataclass
class FctStatistics:
    """Summary statistics of a set of completion times."""

    count: int
    mean_s: float
    median_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_fcts(
        cls,
        fcts: Sequence[float],
        multiplicities: Optional[Sequence[int]] = None,
    ) -> "FctStatistics":
        """Statistics over completion times, optionally session-weighted.

        ``multiplicities`` (parallel to ``fcts``) counts each completion time
        that many times — an aggregate flow of N sessions enters the
        statistics exactly as N discrete flows with its FCT would.
        """
        arr = np.asarray(list(fcts), dtype=float)
        arr = _expand_sessions(arr, multiplicities)
        if arr.size == 0:
            return cls(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
        return cls(
            count=int(arr.size),
            mean_s=float(arr.mean()),
            median_s=float(np.percentile(arr, 50)),
            p95_s=float(np.percentile(arr, 95)),
            p99_s=float(np.percentile(arr, 99)),
            max_s=float(arr.max()),
        )


def _expand_sessions(
    values: np.ndarray, multiplicities: Optional[Sequence[int]]
) -> np.ndarray:
    """Repeat each value by its multiplicity (a no-op when all are 1)."""
    if multiplicities is None:
        return values
    reps = np.asarray(list(multiplicities), dtype=np.intp)
    if reps.shape != values.shape:
        raise ValueError(
            f"got {values.size} values but {reps.size} multiplicities; they must match"
        )
    if (reps == 1).all():
        return values
    return np.repeat(values, reps)


def record_multiplicities(records: Sequence[FlowRecord]) -> Optional[np.ndarray]:
    """Per-record session counts, or None when every record is discrete."""
    reps = np.asarray([r.multiplicity for r in records], dtype=np.intp)
    if reps.size == 0 or (reps == 1).all():
        return None
    return reps


def average_fct(records: Sequence[FlowRecord]) -> float:
    """Session-weighted mean FCT over all records (NaN when empty).

    An aggregate record of multiplicity N counts as N sessions with its FCT,
    so the mean is indistinguishable from the N-discrete equivalent.
    """
    if not records:
        return float("nan")
    fcts = np.asarray([r.fct_s for r in records], dtype=float)
    reps = record_multiplicities(records)
    if reps is None:
        return float(np.mean(fcts))
    return float(np.mean(np.repeat(fcts, reps)))


def afct_by_size_bins(
    records: Sequence[FlowRecord],
    bin_edges_bytes: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Average FCT per file-size bin.

    Parameters
    ----------
    records:
        Finished-flow records.
    bin_edges_bytes:
        Monotonically increasing bin edges in bytes (``len(edges) - 1`` bins).

    Returns
    -------
    (bin_centers_bytes, afct_s, counts)
        Bins with no flows have ``afct_s = nan`` and ``counts = 0``.
    """
    edges = np.asarray(list(bin_edges_bytes), dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("need at least two bin edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("bin edges must be strictly increasing")

    centers = (edges[:-1] + edges[1:]) / 2.0
    afct = np.full(centers.shape, np.nan)
    counts = np.zeros(centers.shape, dtype=int)
    if not records:
        return centers, afct, counts

    sizes = np.array([r.size_bytes for r in records], dtype=float)
    fcts = np.array([r.fct_s for r in records], dtype=float)
    reps = record_multiplicities(records)
    if reps is not None:
        sizes = np.repeat(sizes, reps)
        fcts = np.repeat(fcts, reps)
    indices = np.digitize(sizes, edges) - 1
    for b in range(centers.size):
        mask = indices == b
        if np.any(mask):
            afct[b] = float(fcts[mask].mean())
            counts[b] = int(mask.sum())
    return centers, afct, counts


def size_bin_edges(
    min_bytes: float, max_bytes: float, num_bins: int, log_scale: bool = False
) -> np.ndarray:
    """Convenience constructor for AFCT bin edges."""
    if min_bytes <= 0 or max_bytes <= min_bytes:
        raise ValueError("need 0 < min < max")
    if num_bins < 1:
        raise ValueError("need at least one bin")
    if log_scale:
        return np.logspace(np.log10(min_bytes), np.log10(max_bytes), num_bins + 1)
    return np.linspace(min_bytes, max_bytes, num_bins + 1)


def afct_ratio(
    baseline: Sequence[FlowRecord], candidate: Sequence[FlowRecord]
) -> float:
    """``mean FCT(baseline) / mean FCT(candidate)`` — >1 means the candidate is faster."""
    base = average_fct(baseline)
    cand = average_fct(candidate)
    if not np.isfinite(base) or not np.isfinite(cand) or cand <= 0:
        return float("nan")
    return base / cand
