"""The metrics collector: flow completions, throughput and availability sampling."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metrics.availability import AvailabilitySample, AvailabilitySeries
from repro.metrics.records import FlowRecord
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.network.fabric import FabricSimulator
from repro.network.flow import Flow, FlowKind
from repro.sim.timers import PeriodicTimer


class MetricsCollector:
    """Collects flow records and samples instantaneous throughput.

    Parameters
    ----------
    fabric:
        The fabric to observe; the collector registers a completion callback.
    sample_interval_s:
        Period of the instantaneous-throughput sampling (the paper plots the
        average instantaneous throughput roughly once per simulated second).
    record_kinds:
        If given, only flows of these kinds are recorded (e.g. exclude
        background replication flows from client-facing FCT statistics).
    """

    def __init__(
        self,
        fabric: FabricSimulator,
        sample_interval_s: float = 1.0,
        record_kinds: Optional[Sequence[FlowKind]] = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.fabric = fabric
        self.sample_interval_s = float(sample_interval_s)
        self.record_kinds = tuple(record_kinds) if record_kinds else None
        self.records: List[FlowRecord] = []
        self.throughput = ThroughputSeries()
        #: link availability + flow-disruption series, sampled on the same
        #: timer as the throughput (trivial on a static world, which keeps
        #: dynamic and static runs structurally identical)
        self.availability = AvailabilitySeries()
        self.flows_started = 0
        #: Sessions started — equals :attr:`flows_started` until an aggregate
        #: (multiplicity > 1) flow arrives, then counts every session it
        #: stands in for.
        self.sessions_started = 0
        self._timer: Optional[PeriodicTimer] = None
        self._last_sample_time = fabric.sim.now
        self._last_total_bytes = fabric.total_bytes_delivered

        fabric.on_flow_finished(self._on_flow_finished)
        fabric.on_flow_started(self._on_flow_started)

    # -- lifecycle ------------------------------------------------------------------------
    def start_sampling(self) -> None:
        """Begin periodic throughput sampling."""
        if self._timer is None:
            self._timer = PeriodicTimer(self.fabric.sim, self.sample_interval_s, self._sample)

    def stop_sampling(self) -> None:
        """Stop sampling (takes a final sample first)."""
        if self._timer is not None:
            self._sample(self.fabric.sim.now)
            self._timer.stop()
            self._timer = None

    def detach(self) -> None:
        """Fully disconnect the collector from its fabric.

        Stops the periodic sampling timer (if running) and unregisters the
        flow-completion callback, so the collector records nothing further
        and the fabric holds no reference back to it.  Idempotent — safe to
        call twice, or on a collector that never started sampling.  Use this
        to tear a collector down cleanly between jobs in a long-lived
        worker; the collected records and throughput series stay readable.
        """
        self.stop_sampling()
        self.fabric.remove_flow_finished_callback(self._on_flow_finished)
        self.fabric.remove_flow_started_callback(self._on_flow_started)

    # -- callbacks --------------------------------------------------------------------------
    def _on_flow_finished(self, flow: Flow, now: float) -> None:
        if self.record_kinds is not None and flow.kind not in self.record_kinds:
            return
        self.records.append(FlowRecord.from_flow(flow))

    def _on_flow_started(self, flow: Flow, now: float) -> None:
        self.flows_started += 1
        self.sessions_started += flow.multiplicity

    def _sample(self, now: float) -> None:
        active = self.fabric.active_flows
        dt = now - self._last_sample_time
        delivered = self.fabric.total_bytes_delivered - self._last_total_bytes
        aggregate_bps = delivered * 8.0 / dt if dt > 0 else 0.0
        per_flow_rates = [f.current_rate_bps for f in active]
        if getattr(self.fabric, "_aggregate_active", 0):
            # Session-weighted view: an aggregate flow counts as N active
            # sessions, and the mean per-session rate is Σ aggregate rates
            # over Σ sessions (each session runs at rate/multiplicity).
            sessions = sum(f.multiplicity for f in active)
            mean_flow_bps = float(np.sum(per_flow_rates)) / sessions if sessions else 0.0
        else:
            sessions = len(active)
            mean_flow_bps = float(np.mean(per_flow_rates)) if per_flow_rates else 0.0
        self.throughput.add(
            ThroughputSample(
                time_s=now,
                active_flows=sessions,
                aggregate_bps=aggregate_bps,
                mean_flow_bps=mean_flow_bps,
            )
        )
        self.availability.add(
            AvailabilitySample(
                time_s=now,
                links_down=self.fabric.links_down,
                links_total=len(self.fabric.topology.links),
                flows_rerouted=self.fabric.flows_rerouted_on_failure,
                flows_aborted=self.fabric.flows_aborted_on_failure,
            )
        )
        self._last_sample_time = now
        self._last_total_bytes = self.fabric.total_bytes_delivered

    # -- accessors ---------------------------------------------------------------------------
    def fcts(self, kinds: Optional[Sequence[FlowKind]] = None) -> np.ndarray:
        """Array of flow completion times, optionally filtered by kind."""
        records = self.filtered_records(kinds)
        return np.array([r.fct_s for r in records], dtype=float)

    def sizes(self, kinds: Optional[Sequence[FlowKind]] = None) -> np.ndarray:
        """Array of flow sizes matching :meth:`fcts`."""
        records = self.filtered_records(kinds)
        return np.array([r.size_bytes for r in records], dtype=float)

    def filtered_records(self, kinds: Optional[Sequence[FlowKind]] = None) -> List[FlowRecord]:
        """Records filtered to the given kinds (all records when None)."""
        if kinds is None:
            return list(self.records)
        kindset = set(kinds)
        return [r for r in self.records if r.kind in kindset]

    @property
    def completed_count(self) -> int:
        """Number of recorded completions."""
        return len(self.records)

    def kernel_extras(self) -> Dict[str, float]:
        """Perf counters from the allocation kernel, fabric and event engine.

        Exported into ``SchemeResult.extras`` under a ``kernel_`` prefix (see
        the experiment runner) so benches and the serve daemon can explain
        *why* a run was slow: how often the water-filler solved incrementally
        vs in full, how large the dirty regions were, how much churn the
        fabric coalesced, and how hard the event heap and timer wheel worked.
        All values are deterministic functions of the run, so they are safe
        inside the canonical (bit-compared) result payload.
        """
        fabric = self.fabric
        sim = fabric.sim
        extras: Dict[str, float] = {
            "recomputes": float(fabric.recomputes),
            "recomputes_coalesced": float(fabric.recomputes_coalesced),
            "heap_compactions": float(sim.heap_compactions),
        }
        delta = fabric.incidence.delta
        if delta is not None:
            extras.update(delta.stats())
        wheel = getattr(sim, "_wheel", None)
        if wheel is not None:
            for key, value in wheel.stats().items():
                extras[f"wheel_{key}"] = float(value)
        return extras
