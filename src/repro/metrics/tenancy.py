"""Per-tenant breakdowns of finished-flow records.

Aggregate workloads tag flows with an opaque ``tenant`` label; this module
turns the finished records into flat numeric extras (per-tenant session
counts, session-weighted mean FCT/goodput, and a Jain fairness index over the
tenants' mean goodputs) suitable for ``SchemeResult.extras``.

Runs without tenant tags produce *no* extras at all — an untagged scenario's
result payload is byte-identical to what it was before tenancy existed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.metrics.records import FlowRecord


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)`` — 1.0 is perfectly fair.

    NaN on an empty input; 1.0 when every value is zero (nobody is
    disadvantaged relative to anybody else).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan")
    square_sum = float(np.sum(arr * arr))
    if square_sum == 0.0:
        return 1.0
    total = float(np.sum(arr))
    return total * total / (arr.size * square_sum)


def per_tenant_extras(records: Sequence[FlowRecord]) -> Dict[str, float]:
    """Flat per-tenant metrics for ``SchemeResult.extras``.

    Returns an empty dict when no record carries a tenant tag, so tenant-free
    runs keep their exact historical payload.  Untagged records in a tagged
    run are reported under the ``"untagged"`` pseudo-tenant.

    Keys (``<t>`` is the tenant label):

    * ``tenant_count`` — number of distinct tenants seen
    * ``tenant_fairness_jain`` — Jain index over the tenants' session-weighted
      mean goodputs
    * ``tenant:<t>:sessions`` — sessions completed (Σ multiplicity)
    * ``tenant:<t>:flows`` — flow objects completed
    * ``tenant:<t>:mean_fct_s`` — session-weighted mean completion time
    * ``tenant:<t>:mean_goodput_bps`` — session-weighted mean per-session goodput
    """
    if not any(r.tenant for r in records):
        return {}
    by_tenant: Dict[str, List[FlowRecord]] = {}
    for record in records:
        by_tenant.setdefault(record.tenant or "untagged", []).append(record)

    extras: Dict[str, float] = {"tenant_count": float(len(by_tenant))}
    mean_goodputs: List[float] = []
    for tenant in sorted(by_tenant):
        group = by_tenant[tenant]
        sessions = float(sum(r.multiplicity for r in group))
        fct_sum = float(sum(r.fct_s * r.multiplicity for r in group))
        goodput_sum = float(sum(r.goodput_bps * r.multiplicity for r in group))
        mean_fct = fct_sum / sessions if sessions else float("nan")
        mean_goodput = goodput_sum / sessions if sessions else float("nan")
        extras[f"tenant:{tenant}:sessions"] = sessions
        extras[f"tenant:{tenant}:flows"] = float(len(group))
        extras[f"tenant:{tenant}:mean_fct_s"] = mean_fct
        extras[f"tenant:{tenant}:mean_goodput_bps"] = mean_goodput
        mean_goodputs.append(mean_goodput)
    extras["tenant_fairness_jain"] = jain_fairness_index(mean_goodputs)
    return extras


__all__ = ["jain_fairness_index", "per_tenant_extras"]
