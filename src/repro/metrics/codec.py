"""Lossless columnar wire codec for canonical result dicts.

The dispatch paths ship every computed result as the plain
:meth:`~repro.metrics.comparison.SchemeResult.to_dict` form — a list of
per-record dicts whose JSON/pickle encoding repeats every key name once per
flow record and per sample.  For workloads with tens of thousands of flow
records that key repetition dominates the bytes on the process pipe and the
cluster HTTP wire.  This module packs those row lists into columns:

* float columns (``size_bytes``, ``time_s``, ...) as base64 of the IEEE-754
  little-endian ``struct`` bytes (``<Nd``) — bit-exact, including ``-0.0``,
  infinities and NaN payloads;
* int columns (``flow_id``, ``active_flows``, ...) as base64 ``<Nq``
  (int64); values outside int64 are rejected so nothing silently wraps;
* string columns (``kind``, ``src``, ``dst``) dictionary-encoded as a
  first-appearance value table plus base64 ``<NI`` code array.

The codec is *strict by design*: :func:`encode_result` raises
:class:`CodecError` on any shape or type it does not recognise — an extra
key, a bool where an int belongs, a chaos-corrupted payload — and callers
fall back to shipping the plain dict.  That keeps the invariant simple:
whatever was encoded decodes to the byte-identical plain dict
(``json.dumps(decode_result(encode_result(d)), sort_keys=True)`` equals the
same dump of ``d``), and everything else travels exactly as before.

Encoded payloads are marked with the reserved :data:`COLUMNAR_KEY` key so
receivers can distinguish them from plain results without out-of-band
signalling — that marker is the whole wire negotiation (see
:mod:`repro.service.protocol`).
"""

from __future__ import annotations

import base64
import json
import struct
import threading
import time
from typing import Any, Dict, List, Mapping, Sequence

#: Wire format names, as spoken by ``resolve_executor(wire=...)``, the CLI
#: ``--wire`` flag and the ``POST /jobs`` body's ``"wire"`` field.
WIRE_JSON = "json"
WIRE_COLUMNAR = "columnar"
WIRE_FORMATS = (WIRE_JSON, WIRE_COLUMNAR)

#: Reserved marker key identifying an encoded payload (value: codec version).
COLUMNAR_KEY = "__columnar__"
#: Version 2 added the ``multiplicity``/``tenant`` record columns (aggregate
#: flows).  Version mismatches raise :class:`CodecError` at decode time and
#: the wire layers fall back to plain JSON, so old↔new pairings interoperate.
COLUMNAR_VERSION = 2


class CodecError(ValueError):
    """The payload does not match the canonical result shape exactly.

    Encoders treat this as "ship the plain dict instead"; decoders treat it
    as a corrupt transfer (the retry layer classifies it like any other
    hydration failure).
    """


# -- column specs ----------------------------------------------------------------------
# One (column name -> kind) spec per row table of the canonical result shape;
# kinds: "f" float64, "i" int64, "s" dictionary-encoded string.
_RECORD_SPEC: Dict[str, str] = {
    "flow_id": "i",
    "size_bytes": "f",
    "created_at_s": "f",
    "started_at_s": "f",
    "finished_at_s": "f",
    "kind": "s",
    "src": "s",
    "dst": "s",
    "multiplicity": "i",
    "tenant": "s",
}
_THROUGHPUT_SPEC: Dict[str, str] = {
    "time_s": "f",
    "active_flows": "i",
    "aggregate_bps": "f",
    "mean_flow_bps": "f",
}
_AVAILABILITY_SPEC: Dict[str, str] = {
    "time_s": "f",
    "links_down": "i",
    "links_total": "i",
    "flows_rerouted": "i",
    "flows_aborted": "i",
}

_TOP_REQUIRED = frozenset(
    {"scheme", "records", "throughput", "availability", "sla_violations", "extras"}
)
_TOP_ALLOWED = _TOP_REQUIRED | {"wall_clock_s"}


def _pack_floats(values: Sequence[Any]) -> str:
    for value in values:
        # bool is an int subclass and int would coerce silently; only true
        # floats keep the "decode == original bytes" contract.
        if type(value) is not float:
            raise CodecError(f"expected float column value, got {type(value).__name__}")
    return base64.b64encode(struct.pack(f"<{len(values)}d", *values)).decode("ascii")


def _pack_ints(values: Sequence[Any]) -> str:
    for value in values:
        if type(value) is not int:
            raise CodecError(f"expected int column value, got {type(value).__name__}")
    try:
        packed = struct.pack(f"<{len(values)}q", *values)
    except struct.error as exc:
        raise CodecError(f"int column value outside int64 ({exc})") from exc
    return base64.b64encode(packed).decode("ascii")


def _pack_strings(values: Sequence[Any]) -> Dict[str, Any]:
    table: Dict[str, int] = {}
    codes: List[int] = []
    for value in values:
        if type(value) is not str:
            raise CodecError(f"expected str column value, got {type(value).__name__}")
        codes.append(table.setdefault(value, len(table)))
    packed = base64.b64encode(struct.pack(f"<{len(codes)}I", *codes)).decode("ascii")
    return {"values": list(table), "codes": packed}


def _unpack_floats(data: Any, n: int) -> List[float]:
    raw = base64.b64decode(data, validate=True)
    return list(struct.unpack(f"<{n}d", raw))


def _unpack_ints(data: Any, n: int) -> List[int]:
    raw = base64.b64decode(data, validate=True)
    return list(struct.unpack(f"<{n}q", raw))


def _unpack_strings(data: Any, n: int) -> List[str]:
    values = data["values"]
    codes = struct.unpack(f"<{n}I", base64.b64decode(data["codes"], validate=True))
    return [values[code] for code in codes]


def _encode_table(rows: Any, spec: Mapping[str, str], label: str) -> Dict[str, Any]:
    if not isinstance(rows, list):
        raise CodecError(f"{label} must be a list, got {type(rows).__name__}")
    expected = set(spec)
    columns: Dict[str, List[Any]] = {name: [] for name in spec}
    for row in rows:
        if not isinstance(row, dict) or set(row) != expected:
            raise CodecError(f"{label} row does not match the canonical shape")
        for name in spec:
            columns[name].append(row[name])
    encoded: Dict[str, Any] = {"n": len(rows)}
    for name, kind in spec.items():
        values = columns[name]
        if kind == "f":
            encoded[name] = _pack_floats(values)
        elif kind == "i":
            encoded[name] = _pack_ints(values)
        else:
            encoded[name] = _pack_strings(values)
    return encoded


def _decode_table(data: Any, spec: Mapping[str, str], label: str) -> List[Dict[str, Any]]:
    try:
        n = data["n"]
        columns: Dict[str, List[Any]] = {}
        for name, kind in spec.items():
            if kind == "f":
                columns[name] = _unpack_floats(data[name], n)
            elif kind == "i":
                columns[name] = _unpack_ints(data[name], n)
            else:
                columns[name] = _unpack_strings(data[name], n)
    except CodecError:
        raise
    except Exception as exc:  # noqa: BLE001 - any malformed column is a codec error
        raise CodecError(f"malformed columnar {label} table ({exc!r})") from exc
    return [{name: columns[name][i] for name in spec} for i in range(n)]


def is_columnar(payload: Any) -> bool:
    """Whether ``payload`` carries the columnar marker (see :data:`COLUMNAR_KEY`)."""
    return isinstance(payload, Mapping) and COLUMNAR_KEY in payload


def encode_result(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Encode one canonical (or full ``to_dict``) result dict into columns.

    Strict: raises :class:`CodecError` unless ``data`` matches the
    :meth:`~repro.metrics.comparison.SchemeResult.to_dict` shape exactly
    (key sets and value types).  :func:`decode_result` of the returned dict
    reproduces ``data`` byte-for-byte.
    """
    if not isinstance(data, Mapping):
        raise CodecError(f"result payload must be a mapping, got {type(data).__name__}")
    keys = set(data)
    if not _TOP_REQUIRED <= keys or not keys <= _TOP_ALLOWED:
        raise CodecError(
            f"result payload keys {sorted(keys)} do not match the canonical shape"
        )
    if type(data["scheme"]) is not str:
        raise CodecError("scheme must be a str")
    if type(data["sla_violations"]) is not int:
        raise CodecError("sla_violations must be an int")
    extras = data["extras"]
    if not isinstance(extras, dict) or any(
        type(k) is not str or type(v) is not float for k, v in extras.items()
    ):
        raise CodecError("extras must map str to float")
    for series_key, spec in (
        ("throughput", _THROUGHPUT_SPEC),
        ("availability", _AVAILABILITY_SPEC),
    ):
        series = data[series_key]
        if not isinstance(series, dict) or set(series) != {"samples"}:
            raise CodecError(f"{series_key} must be {{'samples': [...]}}")
    encoded: Dict[str, Any] = {
        COLUMNAR_KEY: COLUMNAR_VERSION,
        "scheme": data["scheme"],
        "sla_violations": data["sla_violations"],
        "extras": dict(extras),
        "records": _encode_table(data["records"], _RECORD_SPEC, "records"),
        "throughput": _encode_table(
            data["throughput"]["samples"], _THROUGHPUT_SPEC, "throughput"
        ),
        "availability": _encode_table(
            data["availability"]["samples"], _AVAILABILITY_SPEC, "availability"
        ),
    }
    if "wall_clock_s" in data:
        if type(data["wall_clock_s"]) is not float:
            raise CodecError("wall_clock_s must be a float")
        encoded["wall_clock_s"] = data["wall_clock_s"]
    return encoded


def decode_result(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Decode :func:`encode_result` output back to the plain result dict.

    Raises :class:`CodecError` on anything that is not a well-formed
    version-compatible encoded payload.
    """
    if not is_columnar(data):
        raise CodecError("payload carries no columnar marker")
    version = data[COLUMNAR_KEY]
    if version != COLUMNAR_VERSION:
        raise CodecError(
            f"unsupported columnar version {version!r} "
            f"(this side speaks {COLUMNAR_VERSION})"
        )
    expected = _TOP_ALLOWED | {COLUMNAR_KEY}
    keys = set(data)
    if not (_TOP_REQUIRED | {COLUMNAR_KEY}) <= keys or not keys <= expected:
        raise CodecError(
            f"encoded payload keys {sorted(keys)} do not match the canonical shape"
        )
    decoded: Dict[str, Any] = {
        "scheme": data["scheme"],
        "records": _decode_table(data["records"], _RECORD_SPEC, "records"),
        "throughput": {
            "samples": _decode_table(data["throughput"], _THROUGHPUT_SPEC, "throughput")
        },
        "availability": {
            "samples": _decode_table(
                data["availability"], _AVAILABILITY_SPEC, "availability"
            )
        },
        "sla_violations": data["sla_violations"],
        "extras": dict(data["extras"]),
    }
    if "wall_clock_s" in data:
        decoded["wall_clock_s"] = data["wall_clock_s"]
    return decoded


def encode_wire_outcome(result: Dict[str, Any]) -> Dict[str, Any]:
    """The ``{"ok": True}`` outcome dict shipping ``result`` in columns.

    Besides the encoded payload the outcome carries the encoder-side perf
    counters (``encode_s`` seconds, ``wire_bytes`` of the compact-JSON
    encoding) so the dispatcher can aggregate them even when the encoder ran
    in another process or on another host.  Raises :class:`CodecError` when
    the result does not encode — callers ship the plain outcome instead.
    """
    started = time.perf_counter()
    encoded = encode_result(result)
    wire_bytes = len(json.dumps(encoded, sort_keys=True, separators=(",", ":")))
    return {
        "ok": True,
        "result": encoded,
        "encoding": WIRE_COLUMNAR,
        "wire_bytes": wire_bytes,
        "encode_s": time.perf_counter() - started,
    }


class WireCounters:
    """Thread-safe accumulator of codec perf counters (module singleton).

    Keys: ``encoded_results`` / ``encode_s`` / ``encoded_bytes`` (reported by
    the encoding side through the outcome envelope) and ``decoded_results`` /
    ``decode_s`` (measured locally at decode time).  :func:`run_jobs` snapshots
    the singleton around each batch and exports the delta through
    ``ExecutionReport.summary()["wire"]``; the service daemons surface their
    own accumulations on ``GET /stats``.
    """

    KEYS = (
        "encoded_results",
        "encode_s",
        "encoded_bytes",
        "decoded_results",
        "decode_s",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, float] = {key: 0.0 for key in self.KEYS}

    def add(self, **deltas: float) -> None:
        with self._lock:
            for key, delta in deltas.items():
                if key not in self._data:
                    raise KeyError(f"unknown wire counter {key!r}")
                self._data[key] += float(delta)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._data)

    def delta_since(self, before: Mapping[str, float]) -> Dict[str, float]:
        now = self.snapshot()
        return {key: now[key] - float(before.get(key, 0.0)) for key in self.KEYS}


#: Process-wide counters of the dispatcher side (see :class:`WireCounters`).
WIRE_COUNTERS = WireCounters()


__all__ = [
    "COLUMNAR_KEY",
    "COLUMNAR_VERSION",
    "CodecError",
    "WIRE_COLUMNAR",
    "WIRE_COUNTERS",
    "WIRE_FORMATS",
    "WIRE_JSON",
    "WireCounters",
    "decode_result",
    "encode_result",
    "encode_wire_outcome",
    "is_columnar",
]
