"""SLA specification, real-time violation detection and mitigation.

Section IV-A of the paper: an SLA violation is detected whenever the
(priority-weighted) sum of flow rates ``S`` on a link exceeds the link's
effective capacity ``αC − βQ/d``.  RMs detect violations on the server access
links, level-1 RAs on the rack uplinks, and so on up the tree — all within
one control interval (milliseconds), which is the "realtime" detection claim.

Once detected, a violation can be mitigated by

* requesting more bandwidth on the link (using reserve/backup capacity), or
* asking the NNS to move the affected traffic to a different block server
  with enough available bandwidth.

Both mitigations are modelled here as pluggable actions so experiments can
measure their effect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class SlaPolicy:
    """An SLA for a tenant/flow class.

    ``min_throughput_bps`` and ``max_fct_s`` express the two quantities the
    paper's SLAs cover (throughput and delay).  Either can be left at its
    permissive default.
    """

    name: str = "default"
    min_throughput_bps: float = 0.0
    max_fct_s: float = float("inf")
    priority_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.min_throughput_bps < 0:
            raise ValueError("min_throughput_bps must be non-negative")
        if self.max_fct_s <= 0:
            raise ValueError("max_fct_s must be positive")
        if self.priority_weight <= 0:
            raise ValueError("priority_weight must be positive")

    def is_flow_compliant(self, achieved_throughput_bps: float, fct_s: Optional[float]) -> bool:
        """Check a finished flow against this SLA."""
        if achieved_throughput_bps + 1e-9 < self.min_throughput_bps:
            return False
        if fct_s is not None and fct_s > self.max_fct_s:
            return False
        return True


class MitigationAction(enum.Enum):
    """What the control plane did about a violation."""

    NONE = "none"
    ADD_BANDWIDTH = "add-bandwidth"          #: use reserve/backup capacity on the link
    REASSIGN_SERVER = "reassign-server"      #: NNS moves new traffic to another BS
    RAISE_PRIORITY = "raise-priority"        #: bump the priority weights of the SLA's flows


@dataclass
class SlaViolation:
    """One detected violation event."""

    time_s: float
    location: str                 #: node id of the RM/RA that detected it
    level: int                    #: tree level of the detector (0 = RM)
    demand_bps: float             #: the offending rate sum S
    capacity_bps: float           #: the effective capacity it exceeded
    mitigation: MitigationAction = MitigationAction.NONE

    @property
    def overload_ratio(self) -> float:
        """How far above capacity the demand was (1.0 = exactly at capacity)."""
        if self.capacity_bps <= 0:
            return float("inf")
        return self.demand_bps / self.capacity_bps


class SlaMonitor:
    """Collects violations and applies a mitigation strategy.

    Parameters
    ----------
    mitigation:
        The action to record/perform for each violation.
    bandwidth_boost_factor:
        When mitigating with ``ADD_BANDWIDTH``, the factor by which the
        affected link's capacity is (logically) increased — modelling the
        paper's "reserve, backup or recovery links".
    apply_bandwidth_boost:
        Callback ``(location, factor) -> None`` invoked to actually apply the
        boost (wired by the controller to the topology); optional.
    """

    def __init__(
        self,
        mitigation: MitigationAction = MitigationAction.NONE,
        bandwidth_boost_factor: float = 1.25,
        apply_bandwidth_boost: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        if bandwidth_boost_factor < 1.0:
            raise ValueError("bandwidth_boost_factor must be >= 1")
        self.mitigation = mitigation
        self.bandwidth_boost_factor = float(bandwidth_boost_factor)
        self.apply_bandwidth_boost = apply_bandwidth_boost
        self.violations: List[SlaViolation] = []
        #: locations already boosted (a link is only boosted once)
        self._boosted: set = set()

    def record(
        self,
        time_s: float,
        location: str,
        level: int,
        demand_bps: float,
        capacity_bps: float,
    ) -> SlaViolation:
        """Record a violation and apply the configured mitigation."""
        action = self.mitigation
        if action is MitigationAction.ADD_BANDWIDTH:
            if location not in self._boosted and self.apply_bandwidth_boost is not None:
                self.apply_bandwidth_boost(location, self.bandwidth_boost_factor)
                self._boosted.add(location)
            elif location in self._boosted:
                action = MitigationAction.NONE
        violation = SlaViolation(
            time_s=time_s,
            location=location,
            level=level,
            demand_bps=demand_bps,
            capacity_bps=capacity_bps,
            mitigation=action,
        )
        self.violations.append(violation)
        return violation

    # -- reporting --------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of violations recorded."""
        return len(self.violations)

    def violations_at(self, location: str) -> List[SlaViolation]:
        """Violations detected by one RM/RA."""
        return [v for v in self.violations if v.location == location]

    def violation_rate(self, duration_s: float) -> float:
        """Violations per second of simulated time."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return len(self.violations) / duration_s

    def summary(self) -> Dict[str, int]:
        """Number of violations per detector location."""
        per_location: Dict[str, int] = {}
        for violation in self.violations:
            per_location[violation.location] = per_location.get(violation.location, 0) + 1
        return per_location


def check_flow_slas(
    flows: Sequence,
    policy_of: Callable[[object], Optional[SlaPolicy]],
) -> List[object]:
    """Return the finished flows that violate their SLA.

    ``policy_of(flow)`` maps a flow to its SLA policy (or None for best
    effort).  A flow's achieved throughput is ``size / fct``.
    """
    offenders = []
    for flow in flows:
        policy = policy_of(flow)
        if policy is None:
            continue
        fct = getattr(flow, "fct", None)
        if fct is None or fct <= 0:
            continue
        throughput = flow.size_bytes * 8.0 / fct
        if not policy.is_flow_compliant(throughput, fct):
            offenders.append(flow)
    return offenders
