"""Prioritized rate allocation (Section IV-A).

Every flow carries a priority weight ``℘_j``; the weighted rate sum of
equation 6 makes a flow with weight ``℘`` receive ``℘`` times the share of a
weight-1 flow at its bottleneck.  The paper points out that a source can
*adapt* its weight every round — setting ``℘ = R_target / R_current`` — to
steer its own rate, and that this implicitly implements scheduling policies
such as shortest-job-first (SJF) and earliest-deadline-first (EDF) by giving
short/urgent flows larger targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.network.flow import Flow


class WeightPolicy:
    """Maps a flow to its (possibly time-varying) priority weight."""

    name = "uniform"

    def weight(self, flow: Flow, now: float) -> float:
        """Return the priority weight ``℘_j`` of ``flow`` at time ``now``."""
        return 1.0


class SjfWeightPolicy(WeightPolicy):
    """Shortest-job-first emulation: smaller flows get larger weights.

    The weight is ``(reference_size / remaining_size) ** exponent`` clamped to
    ``[min_weight, max_weight]`` — a flow with little data left is boosted, a
    huge elephant is throttled relative to it.
    """

    name = "sjf"

    def __init__(
        self,
        reference_size_bytes: float = 1e6,
        exponent: float = 0.5,
        min_weight: float = 0.25,
        max_weight: float = 4.0,
    ) -> None:
        if reference_size_bytes <= 0:
            raise ValueError("reference_size_bytes must be positive")
        if not (0.0 < exponent <= 2.0):
            raise ValueError("exponent must be in (0, 2]")
        if not (0.0 < min_weight <= max_weight):
            raise ValueError("need 0 < min_weight <= max_weight")
        self.reference_size_bytes = float(reference_size_bytes)
        self.exponent = float(exponent)
        self.min_weight = float(min_weight)
        self.max_weight = float(max_weight)

    def weight(self, flow: Flow, now: float) -> float:
        remaining = max(flow.remaining_bytes, 1.0)
        raw = (self.reference_size_bytes / remaining) ** self.exponent
        return float(min(max(raw, self.min_weight), self.max_weight))


class EdfWeightPolicy(WeightPolicy):
    """Earliest-deadline-first emulation.

    Flows carry a ``deadline_s`` entry in ``flow.meta``; the weight needed to
    finish by the deadline is ``required_rate / fair_rate_estimate`` where the
    required rate is ``remaining / time_left``.  Flows without a deadline get
    weight 1.
    """

    name = "edf"

    def __init__(
        self,
        fair_rate_estimate_bps: float = 10e6,
        min_weight: float = 0.25,
        max_weight: float = 8.0,
    ) -> None:
        if fair_rate_estimate_bps <= 0:
            raise ValueError("fair_rate_estimate_bps must be positive")
        if not (0.0 < min_weight <= max_weight):
            raise ValueError("need 0 < min_weight <= max_weight")
        self.fair_rate_estimate_bps = float(fair_rate_estimate_bps)
        self.min_weight = float(min_weight)
        self.max_weight = float(max_weight)

    def weight(self, flow: Flow, now: float) -> float:
        deadline = flow.meta.get("deadline_s")
        if deadline is None:
            return 1.0
        time_left = float(deadline) - now
        if time_left <= 0:
            return self.max_weight
        required_bps = flow.remaining_bytes * 8.0 / time_left
        raw = required_bps / self.fair_rate_estimate_bps
        return float(min(max(raw, self.min_weight), self.max_weight))


class TargetRateWeightPolicy(WeightPolicy):
    """The paper's explicit adaptation rule: ``℘ = R_target / R_current``.

    Flows carry a ``target_rate_bps`` entry in ``flow.meta``; every round the
    weight is set to the ratio of the target to the rate actually achieved in
    the previous round, so the allocation converges towards the target as long
    as capacity permits.
    """

    name = "target-rate"

    def __init__(self, min_weight: float = 0.1, max_weight: float = 16.0) -> None:
        if not (0.0 < min_weight <= max_weight):
            raise ValueError("need 0 < min_weight <= max_weight")
        self.min_weight = float(min_weight)
        self.max_weight = float(max_weight)

    def weight(self, flow: Flow, now: float) -> float:
        target = flow.meta.get("target_rate_bps")
        if target is None:
            return 1.0
        achieved = max(flow.current_rate_bps, 1.0)
        raw = float(target) / achieved
        return float(min(max(raw, self.min_weight), self.max_weight))


class PriorityManager:
    """Applies a :class:`WeightPolicy` to all active flows every round."""

    def __init__(self, policy: Optional[WeightPolicy] = None) -> None:
        self.policy = policy or WeightPolicy()

    def refresh(self, flows: Sequence[Flow], now: float) -> Dict[int, float]:
        """Update ``flow.priority_weight`` for every flow; returns the weights."""
        weights: Dict[int, float] = {}
        for flow in flows:
            weight = float(self.policy.weight(flow, now))
            if weight <= 0:
                raise ValueError(
                    f"weight policy {self.policy.name!r} returned non-positive weight {weight}"
                )
            flow.priority_weight = weight
            weights[flow.flow_id] = weight
        return weights
