"""Explicit minimum-rate reservations (Section IV-C, "QoS by explicit reservation").

A source can reserve a minimum rate ``M_j``.  Each RM sums the reservations of
its node's flows and the sums propagate up the RA tree; the capacity available
for *best-effort* sharing on each link becomes ``C − Σ M_j`` while every
reserved flow is guaranteed at least its ``M_j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.network.flow import Flow
from repro.network.topology import Link


@dataclass(frozen=True)
class Reservation:
    """A minimum-rate guarantee for one flow."""

    flow_id: int
    min_rate_bps: float
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.min_rate_bps <= 0:
            raise ValueError("a reservation must be for a positive rate")


class ReservationRegistry:
    """Tracks reservations and checks admission against link capacities."""

    def __init__(self, admission_utilisation: float = 0.9) -> None:
        if not (0.0 < admission_utilisation <= 1.0):
            raise ValueError("admission_utilisation must be in (0, 1]")
        self.admission_utilisation = float(admission_utilisation)
        self._by_flow: Dict[int, Reservation] = {}
        self._paths: Dict[int, List[Link]] = {}

    # -- admission -----------------------------------------------------------------------
    def can_admit(self, flow: Flow, min_rate_bps: float) -> bool:
        """True if reserving ``min_rate_bps`` for ``flow`` keeps every link feasible."""
        if min_rate_bps <= 0:
            raise ValueError("min_rate_bps must be positive")
        for link in flow.path:
            already = self.reserved_on_link(link, extra_flows=())
            if already + min_rate_bps > link.capacity_bps * self.admission_utilisation:
                return False
        return True

    def admit(self, flow: Flow, min_rate_bps: float, tenant: str = "") -> bool:
        """Try to admit a reservation; on success the flow's floor is set."""
        if not self.can_admit(flow, min_rate_bps):
            return False
        self._by_flow[flow.flow_id] = Reservation(flow.flow_id, float(min_rate_bps), tenant)
        flow.min_rate_bps = float(min_rate_bps)
        # Remember the path so per-link sums survive the flow finishing.
        self._paths[flow.flow_id] = list(flow.path)
        return True

    def release(self, flow_id: int) -> None:
        """Drop the reservation of a (finished) flow."""
        self._by_flow.pop(flow_id, None)
        self._paths.pop(flow_id, None)

    # -- queries --------------------------------------------------------------------------
    def reservation_of(self, flow_id: int) -> Optional[Reservation]:
        """The reservation of ``flow_id`` (None if best effort)."""
        return self._by_flow.get(flow_id)

    def reserved_on_link(self, link: Link, extra_flows: Iterable[Flow] = ()) -> float:
        """Total reserved bandwidth crossing ``link``."""
        total = 0.0
        for flow_id, reservation in self._by_flow.items():
            path = self._paths.get(flow_id, ())
            if any(l.link_id == link.link_id for l in path):
                total += reservation.min_rate_bps
        for flow in extra_flows:
            if flow.flow_id not in self._by_flow and flow.min_rate_bps > 0:
                if any(l.link_id == link.link_id for l in flow.path):
                    total += flow.min_rate_bps
        return total

    def link_reservation_map(self, links: Sequence[Link]) -> Dict[str, float]:
        """``link_id -> total reserved bps`` for the given links."""
        return {link.link_id: self.reserved_on_link(link) for link in links}

    @property
    def total_reserved_bps(self) -> float:
        """Sum of all admitted reservations."""
        return sum(r.min_rate_bps for r in self._by_flow.values())

    def __len__(self) -> int:
        return len(self._by_flow)
