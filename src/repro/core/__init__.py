"""The SCDA control plane — the paper's primary contribution.

* :mod:`~repro.core.rate_metric` — the rate metric of Section IV
  (equations 1-6) and the per-link calculator that applies it every control
  interval.
* :mod:`~repro.core.monitors` — resource monitors (RM), one per block server.
* :mod:`~repro.core.allocators` — resource allocators (RA), one per switch.
* :mod:`~repro.core.maxmin` — the max/min exchange over the RM/RA tree
  (Section VI-A, Figure 2).
* :mod:`~repro.core.priority` — prioritized rate allocation (Section IV-A):
  priority weights, SJF/EDF weight policies.
* :mod:`~repro.core.reservation` — explicit minimum-rate reservations
  (Section IV-C).
* :mod:`~repro.core.sla` — SLA-violation detection and mitigation
  (Section IV-A).
* :mod:`~repro.core.server_selection` — content-aware server selection
  (Section VII).
* :mod:`~repro.core.openflow` — the OpenFlow packet-count SJF approximation
  (Section IV-B).
* :mod:`~repro.core.controller` — :class:`ScdaController`, which ties the
  tree, the calculators and the policies together and implements the
  :class:`~repro.network.transport.scda.RateProvider` interface consumed by
  the SCDA transport.
"""

from repro.core.rate_metric import (
    ScdaParams,
    link_rate,
    simplified_link_rate,
    effective_flow_count,
    weighted_rate_sum,
    LinkRateCalculator,
)
from repro.core.monitors import ResourceMonitor, OtherResourceModel
from repro.core.allocators import ResourceAllocator
from repro.core.maxmin import ScdaTree, LevelRates
from repro.core.priority import PriorityManager, SjfWeightPolicy, EdfWeightPolicy
from repro.core.reservation import ReservationRegistry, Reservation
from repro.core.sla import SlaPolicy, SlaViolation, SlaMonitor
from repro.core.server_selection import (
    ServerSelector,
    SelectionMetrics,
    InteractivePolicy,
    SemiInteractivePolicy,
    PassivePolicy,
    PowerAwarePolicy,
)
from repro.core.openflow import OpenFlowSwitch, OpenFlowSjfScheduler
from repro.core.overhead import MessageSizes, OverheadReport, estimate_control_overhead
from repro.core.controller import ScdaController, ScdaControllerConfig

__all__ = [
    "ScdaParams",
    "link_rate",
    "simplified_link_rate",
    "effective_flow_count",
    "weighted_rate_sum",
    "LinkRateCalculator",
    "ResourceMonitor",
    "OtherResourceModel",
    "ResourceAllocator",
    "ScdaTree",
    "LevelRates",
    "PriorityManager",
    "SjfWeightPolicy",
    "EdfWeightPolicy",
    "ReservationRegistry",
    "Reservation",
    "SlaPolicy",
    "SlaViolation",
    "SlaMonitor",
    "ServerSelector",
    "SelectionMetrics",
    "InteractivePolicy",
    "SemiInteractivePolicy",
    "PassivePolicy",
    "PowerAwarePolicy",
    "OpenFlowSwitch",
    "OpenFlowSjfScheduler",
    "MessageSizes",
    "OverheadReport",
    "estimate_control_overhead",
    "ScdaController",
    "ScdaControllerConfig",
]
