"""Resource monitors (RM) — Section III-B and VI-A of the paper.

One RM runs on (or next to) every block server.  Each control interval the RM

* reads the queue lengths of its access-link switch interfaces,
* computes the uplink/downlink rates ``R⁰ʲ`` via equation 2,
* caps them with the server's *other-resource* rate ``R_other`` (CPU, disk,
  application limits) to obtain ``R̂⁰ʲ = min(R⁰ʲ, R_other)``,
* reports the weighted rate sums ``S`` and effective flow counts ``N̂`` to its
  parent RA, and
* receives back the per-level rates ``Ř`` that tell the server how fast it can
  send to / receive from each level of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.rate_metric import LinkRateCalculator, ScdaParams
from repro.network.flow import Flow
from repro.network.topology import Link, Node, Topology


class OtherResourceModel:
    """Models the non-network bottlenecks of a server (``R_other`` in the paper).

    The default model is unconstrained (infinite rates).  Subclasses or
    instances with explicit per-host limits model busy CPUs, slow disks, or
    application-limited sources; the SCDA rate metric then treats the network
    capacity those flows cannot use as available to others (max-min fairness
    across resources).
    """

    def __init__(self, default_up_bps: float = float("inf"), default_down_bps: float = float("inf")) -> None:
        if default_up_bps <= 0 or default_down_bps <= 0:
            raise ValueError("other-resource rates must be positive")
        self.default_up_bps = float(default_up_bps)
        self.default_down_bps = float(default_down_bps)
        self._per_host: Dict[str, Tuple[float, float]] = {}

    def set_host_limit(self, host_id: str, up_bps: float, down_bps: float) -> None:
        """Set an explicit (uplink, downlink) limit for one host."""
        if up_bps <= 0 or down_bps <= 0:
            raise ValueError("other-resource rates must be positive")
        self._per_host[host_id] = (float(up_bps), float(down_bps))

    def clear_host_limit(self, host_id: str) -> None:
        """Remove a per-host limit, restoring the defaults."""
        self._per_host.pop(host_id, None)

    def limits(self, host_id: str, now: float = 0.0) -> Tuple[float, float]:
        """Return ``(uplink_bps, downlink_bps)`` limits for ``host_id``."""
        return self._per_host.get(host_id, (self.default_up_bps, self.default_down_bps))


@dataclass
class RmReport:
    """What an RM reports to its parent RA each control interval."""

    host_id: str
    rate_sum_up_bps: float
    rate_sum_down_bps: float
    n_eff_up: float
    n_eff_down: float
    rate_up_bps: float
    rate_down_bps: float
    sla_violated: bool


class ResourceMonitor:
    """The per-block-server monitoring and rate-computation agent."""

    def __init__(
        self,
        host: Node,
        uplink: Link,
        downlink: Link,
        params: Optional[ScdaParams] = None,
        other_resources: Optional[OtherResourceModel] = None,
        use_simplified_metric: bool = False,
    ) -> None:
        self.host = host
        self.uplink = uplink
        self.downlink = downlink
        self.params = params or ScdaParams()
        self.other_resources = other_resources or OtherResourceModel()
        self.up_calc = LinkRateCalculator(
            uplink.capacity_bps, self.params, use_simplified_metric, name=f"{host.node_id}:up"
        )
        self.down_calc = LinkRateCalculator(
            downlink.capacity_bps, self.params, use_simplified_metric, name=f"{host.node_id}:down"
        )
        #: rates capped by other resources: R̂⁰ʲ
        self.capped_up_bps = self.up_calc.current_rate_bps
        self.capped_down_bps = self.down_calc.current_rate_bps
        #: per-level rates pushed down from the RAs: level -> (up, down)
        self.level_rates: Dict[int, Tuple[float, float]] = {}
        #: per-content access counters used to learn content activity
        self.access_counts: Dict[str, int] = {}
        self.last_report: Optional[RmReport] = None

    # -- measurement ---------------------------------------------------------------------
    def measure(
        self,
        flows_up: Sequence[Flow],
        flows_down: Sequence[Flow],
        now: float,
        reserved_up_bps: float = 0.0,
        reserved_down_bps: float = 0.0,
    ) -> RmReport:
        """Run one control-interval update of the RM.

        ``flows_up``/``flows_down`` are the flows currently crossing the
        host's uplink/downlink; their delivered rates from the previous
        interval are the ``R_j`` of equation 4.
        """
        up_rate = self.up_calc.update(
            queue_bytes=self.uplink.queue_bytes,
            flow_rates_bps=[f.current_rate_bps for f in flows_up],
            weights=[f.priority_weight for f in flows_up],
            reserved_bps=reserved_up_bps,
        )
        down_rate = self.down_calc.update(
            queue_bytes=self.downlink.queue_bytes,
            flow_rates_bps=[f.current_rate_bps for f in flows_down],
            weights=[f.priority_weight for f in flows_down],
            reserved_bps=reserved_down_bps,
        )
        other_up, other_down = self.other_resources.limits(self.host.node_id, now)
        self.capped_up_bps = min(up_rate, other_up)
        self.capped_down_bps = min(down_rate, other_down)
        self.level_rates[0] = (self.capped_up_bps, self.capped_down_bps)

        report = RmReport(
            host_id=self.host.node_id,
            rate_sum_up_bps=self.up_calc.state.rate_sum_bps,
            rate_sum_down_bps=self.down_calc.state.rate_sum_bps,
            n_eff_up=self.up_calc.effective_flows,
            n_eff_down=self.down_calc.effective_flows,
            rate_up_bps=self.capped_up_bps,
            rate_down_bps=self.capped_down_bps,
            sla_violated=self.up_calc.sla_violated or self.down_calc.sla_violated,
        )
        self.last_report = report
        return report

    # -- downward propagation ----------------------------------------------------------------
    def receive_level_rate(self, level: int, up_bps: float, down_bps: float) -> None:
        """Store the best rate up to tree level ``level`` (Ř in Figure 2)."""
        if level < 0:
            raise ValueError("level must be non-negative")
        self.level_rates[level] = (float(up_bps), float(down_bps))

    def rate_to_level(self, level: int) -> Tuple[float, float]:
        """``(uplink, downlink)`` rate the server can sustain up to ``level``.

        Falls back to the deepest known level when the requested one has not
        been propagated yet (e.g. before the first control interval).
        """
        if level in self.level_rates:
            return self.level_rates[level]
        if not self.level_rates:
            return (self.capped_up_bps, self.capped_down_bps)
        deepest = max(k for k in self.level_rates if k <= level) if any(
            k <= level for k in self.level_rates
        ) else min(self.level_rates)
        return self.level_rates[deepest]

    # -- content access tracking (used to classify content activity) ---------------------------
    def record_access(self, content_id: str, count: int = 1) -> None:
        """Count an access to ``content_id`` served by this BS."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.access_counts[content_id] = self.access_counts.get(content_id, 0) + count

    def popularity(self, content_id: str) -> int:
        """Number of recorded accesses for ``content_id``."""
        return self.access_counts.get(content_id, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RM {self.host.node_id} up={self.capped_up_bps / 1e6:.1f}Mbps "
            f"down={self.capped_down_bps / 1e6:.1f}Mbps>"
        )
