"""Control-plane overhead accounting.

The paper argues SCDA's control plane is cheap: every control interval each
RM sends its rate sums to its parent RA and each RA forwards an aggregate to
its parent, and "after the first time RM sends its S values, it can send the
difference Δ ... to minimize the overhead by sending the difference which is
a smaller number than the sum of the rates" (Section IV).  The request-serving
protocols of Section VIII additionally exchange a fixed number of small
control messages per request (Figures 3-5).

This module quantifies that overhead for a given topology and request volume
so it can be reported next to the data-plane results:

* per-interval RM→RA / RA→RA message and byte counts, with and without the
  delta encoding;
* per-request control-message counts for the external write, internal write
  (replication) and external read protocols;
* the aggregate control bandwidth as a fraction of the fabric capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.network.topology import NodeKind, Topology


@dataclass
class MessageSizes:
    """Wire sizes used for the overhead estimates (bytes)."""

    #: a full RM/RA report: S_d, S_u, N̂_d, N̂_u plus addressing — two 64-bit
    #: values per direction plus a small header
    full_report_bytes: float = 64.0
    #: a delta report carries the same fields but compresses to a few bytes
    #: when nothing (or little) changed
    delta_report_bytes: float = 16.0
    #: one downward rate advertisement (per level rate pair)
    rate_advertisement_bytes: float = 32.0
    #: one control message of the request-serving protocols (Figures 3-5)
    request_message_bytes: float = 128.0

    def __post_init__(self) -> None:
        for value in (
            self.full_report_bytes,
            self.delta_report_bytes,
            self.rate_advertisement_bytes,
            self.request_message_bytes,
        ):
            if value <= 0:
                raise ValueError("message sizes must be positive")


#: Control messages per request, counted from Figures 3, 4 and 5 of the paper.
EXTERNAL_WRITE_MESSAGES = 12   # steps 1-12 before data starts flowing
INTERNAL_WRITE_MESSAGES = 11   # steps 1-11 of the replication protocol
EXTERNAL_READ_MESSAGES = 9     # steps 1-6 and 8-10 (step 7 is the data itself)


@dataclass
class OverheadReport:
    """Estimated control-plane load."""

    monitors: int
    allocators: int
    reports_per_interval: int
    report_bytes_per_interval_full: float
    report_bytes_per_interval_delta: float
    advertisement_bytes_per_interval: float
    control_interval_s: float
    request_messages_per_second: float
    request_bytes_per_second: float

    @property
    def control_bytes_per_second_full(self) -> float:
        """Steady-state control bandwidth with full reports."""
        per_interval = self.report_bytes_per_interval_full + self.advertisement_bytes_per_interval
        return per_interval / self.control_interval_s + self.request_bytes_per_second

    @property
    def control_bytes_per_second_delta(self) -> float:
        """Steady-state control bandwidth with delta-encoded reports."""
        per_interval = self.report_bytes_per_interval_delta + self.advertisement_bytes_per_interval
        return per_interval / self.control_interval_s + self.request_bytes_per_second

    @property
    def delta_saving_fraction(self) -> float:
        """Fraction of the periodic report bytes saved by the delta encoding."""
        if self.report_bytes_per_interval_full <= 0:
            return 0.0
        return 1.0 - self.report_bytes_per_interval_delta / self.report_bytes_per_interval_full

    def overhead_fraction_of_capacity(self, topology: Topology) -> float:
        """Control bandwidth (delta encoding) relative to the total fabric capacity."""
        total_capacity = sum(link.capacity_bps for link in topology.links)
        if total_capacity <= 0:
            return 0.0
        return self.control_bytes_per_second_delta * 8.0 / total_capacity


def estimate_control_overhead(
    topology: Topology,
    control_interval_s: float,
    request_rate_per_s: float = 0.0,
    read_fraction: float = 0.0,
    replication_fraction: float = 1.0,
    sizes: Optional[MessageSizes] = None,
) -> OverheadReport:
    """Estimate SCDA's control-plane message load on ``topology``.

    Parameters
    ----------
    topology:
        The datacenter; one RM per host and one RA per switch.
    control_interval_s:
        τ — the reporting period.
    request_rate_per_s:
        Aggregate client request rate (writes + reads).
    read_fraction:
        Fraction of the requests that are reads (the rest are writes).
    replication_fraction:
        Fraction of writes followed by an internal replication transfer.
    """
    if control_interval_s <= 0:
        raise ValueError("control_interval_s must be positive")
    if request_rate_per_s < 0:
        raise ValueError("request_rate_per_s must be non-negative")
    if not (0.0 <= read_fraction <= 1.0):
        raise ValueError("read_fraction must be in [0, 1]")
    if not (0.0 <= replication_fraction <= 1.0):
        raise ValueError("replication_fraction must be in [0, 1]")
    sizes = sizes or MessageSizes()

    monitors = len(topology.hosts())
    allocators = len(topology.switches())
    # Every RM reports to its parent RA, every non-top RA reports to its parent.
    non_top_allocators = sum(
        1 for switch in topology.switches() if topology.parent(switch) is not None
    )
    reports_per_interval = monitors + non_top_allocators
    # Downward advertisements: every RA pushes rates to each of its children,
    # which is one message per parent-child edge — the same count as upward
    # reports (each child has one parent in the tree abstraction).
    advertisements_per_interval = reports_per_interval

    report_bytes_full = reports_per_interval * sizes.full_report_bytes
    report_bytes_delta = reports_per_interval * sizes.delta_report_bytes
    advertisement_bytes = advertisements_per_interval * sizes.rate_advertisement_bytes

    writes_per_s = request_rate_per_s * (1.0 - read_fraction)
    reads_per_s = request_rate_per_s * read_fraction
    request_messages_per_s = (
        writes_per_s * (EXTERNAL_WRITE_MESSAGES + replication_fraction * INTERNAL_WRITE_MESSAGES)
        + reads_per_s * EXTERNAL_READ_MESSAGES
    )
    request_bytes_per_s = request_messages_per_s * sizes.request_message_bytes

    return OverheadReport(
        monitors=monitors,
        allocators=allocators,
        reports_per_interval=reports_per_interval,
        report_bytes_per_interval_full=report_bytes_full,
        report_bytes_per_interval_delta=report_bytes_delta,
        advertisement_bytes_per_interval=advertisement_bytes,
        control_interval_s=control_interval_s,
        request_messages_per_second=request_messages_per_s,
        request_bytes_per_second=request_bytes_per_s,
    )
