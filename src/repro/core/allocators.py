"""Resource allocators (RA) — Section III-B and VI-A of the paper.

One RA is associated with every switch.  Each control interval the RA

* aggregates the rate sums / effective flow counts reported by its children
  (RMs at level 1, RAs above),
* computes the rate of its own uplink/downlink towards its parent via
  equation 2,
* keeps the best ``R̂`` among its children together with the identity of the
  block server that achieves it (so the NNS can ask "which is the best BS in
  this subtree?"), and
* propagates rates up to its parent and back down to its children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.rate_metric import LinkRateCalculator, ScdaParams
from repro.network.flow import Flow
from repro.network.topology import Link, Node


@dataclass
class BestServer:
    """A candidate block server and the rate it can sustain."""

    host_id: str
    rate_bps: float

    def better_than(self, other: Optional["BestServer"]) -> bool:
        """True if this candidate has a strictly higher rate than ``other``."""
        return other is None or self.rate_bps > other.rate_bps


@dataclass
class RaSummary:
    """What an RA propagates to its parent each control interval."""

    switch_id: str
    level: int
    rate_up_bps: float
    rate_down_bps: float
    best_up: Optional[BestServer]
    best_down: Optional[BestServer]
    best_min: Optional[BestServer]
    aggregated_rate_sum_up_bps: float
    aggregated_rate_sum_down_bps: float
    sla_violated: bool


class ResourceAllocator:
    """The per-switch aggregation and allocation agent.

    Parameters
    ----------
    switch:
        The switch this RA is associated with.
    level:
        Tree level of the switch (1 = ToR, ``hmax`` = core).
    uplink / downlink:
        The directed links between this switch and its parent (``None`` for
        the top-level RA, which has no parent inside the datacenter).
    """

    def __init__(
        self,
        switch: Node,
        level: int,
        uplink: Optional[Link],
        downlink: Optional[Link],
        params: Optional[ScdaParams] = None,
        use_simplified_metric: bool = False,
    ) -> None:
        if level < 1:
            raise ValueError("RA level must be >= 1")
        self.switch = switch
        self.level = int(level)
        self.uplink = uplink
        self.downlink = downlink
        self.params = params or ScdaParams()
        self.up_calc = (
            LinkRateCalculator(
                uplink.capacity_bps, self.params, use_simplified_metric, name=f"{switch.node_id}:up"
            )
            if uplink is not None
            else None
        )
        self.down_calc = (
            LinkRateCalculator(
                downlink.capacity_bps,
                self.params,
                use_simplified_metric,
                name=f"{switch.node_id}:down",
            )
            if downlink is not None
            else None
        )
        #: best rates among the subtree rooted at this RA
        self.best_up: Optional[BestServer] = None
        self.best_down: Optional[BestServer] = None
        self.best_min: Optional[BestServer] = None
        #: most recent aggregated sums from children (used for SLA detection)
        self.aggregated_rate_sum_up_bps = 0.0
        self.aggregated_rate_sum_down_bps = 0.0
        self.last_summary: Optional[RaSummary] = None

    # -- own link rates ---------------------------------------------------------------------
    def compute_own_rates(
        self,
        flows_up: Sequence[Flow],
        flows_down: Sequence[Flow],
        reserved_up_bps: float = 0.0,
        reserved_down_bps: float = 0.0,
    ) -> Tuple[float, float]:
        """Equation 2 on the RA's own uplink/downlink towards its parent.

        The top-level RA has no parent links; it reports unconstrained rates
        (the constraint of the entry-point access links is applied per flow by
        the transport, since each external client has its own access link).
        """
        if self.up_calc is not None:
            up = self.up_calc.update(
                queue_bytes=self.uplink.queue_bytes,
                flow_rates_bps=[f.current_rate_bps for f in flows_up],
                weights=[f.priority_weight for f in flows_up],
                reserved_bps=reserved_up_bps,
            )
        else:
            up = float("inf")
        if self.down_calc is not None:
            down = self.down_calc.update(
                queue_bytes=self.downlink.queue_bytes,
                flow_rates_bps=[f.current_rate_bps for f in flows_down],
                weights=[f.priority_weight for f in flows_down],
                reserved_bps=reserved_down_bps,
            )
        else:
            down = float("inf")
        return up, down

    # -- aggregation ---------------------------------------------------------------------------
    def aggregate(
        self,
        child_summaries: Sequence["ChildMetrics"],
        own_up_bps: float,
        own_down_bps: float,
    ) -> RaSummary:
        """Combine children metrics with the RA's own link rates (Figure 2).

        ``R̂ = min(own R, max over children R̂)`` — the best rate obtainable
        through this subtree is capped by this RA's own link to its parent.
        """
        best_up: Optional[BestServer] = None
        best_down: Optional[BestServer] = None
        best_min: Optional[BestServer] = None
        sum_up = 0.0
        sum_down = 0.0
        child_violation = False
        for child in child_summaries:
            sum_up += child.rate_sum_up_bps
            sum_down += child.rate_sum_down_bps
            child_violation = child_violation or child.sla_violated
            cand_up = BestServer(child.best_up_host, child.rate_up_bps)
            cand_down = BestServer(child.best_down_host, child.rate_down_bps)
            cand_min = BestServer(child.best_min_host, min(child.rate_up_bps, child.rate_down_bps))
            if cand_up.better_than(best_up):
                best_up = cand_up
            if cand_down.better_than(best_down):
                best_down = cand_down
            if cand_min.better_than(best_min):
                best_min = cand_min

        # Cap the subtree's best rates by this RA's own links.
        if best_up is not None:
            best_up = BestServer(best_up.host_id, min(best_up.rate_bps, own_up_bps))
        if best_down is not None:
            best_down = BestServer(best_down.host_id, min(best_down.rate_bps, own_down_bps))
        if best_min is not None:
            best_min = BestServer(
                best_min.host_id, min(best_min.rate_bps, own_up_bps, own_down_bps)
            )

        self.best_up, self.best_down, self.best_min = best_up, best_down, best_min
        self.aggregated_rate_sum_up_bps = sum_up
        self.aggregated_rate_sum_down_bps = sum_down

        # SLA detection at this level: the aggregated demand of the subtree
        # exceeds the effective capacity of the RA's own link (Section IV-A).
        violated = child_violation
        if self.up_calc is not None:
            violated = violated or sum_up > self.up_calc.effective_capacity_bps(
                self.uplink.queue_bytes
            ) + 1e-9
        if self.down_calc is not None:
            violated = violated or sum_down > self.down_calc.effective_capacity_bps(
                self.downlink.queue_bytes
            ) + 1e-9

        summary = RaSummary(
            switch_id=self.switch.node_id,
            level=self.level,
            rate_up_bps=own_up_bps,
            rate_down_bps=own_down_bps,
            best_up=best_up,
            best_down=best_down,
            best_min=best_min,
            aggregated_rate_sum_up_bps=sum_up,
            aggregated_rate_sum_down_bps=sum_down,
            sla_violated=violated,
        )
        self.last_summary = summary
        return summary


@dataclass
class ChildMetrics:
    """Metrics a child (RM or lower-level RA) exposes to its parent RA."""

    child_id: str
    rate_up_bps: float
    rate_down_bps: float
    rate_sum_up_bps: float
    rate_sum_down_bps: float
    best_up_host: str
    best_down_host: str
    best_min_host: str
    sla_violated: bool = False
