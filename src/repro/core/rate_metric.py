"""The SCDA rate metric (Section IV of the paper).

Every control interval τ each RM/RA computes, for the uplink and downlink of
the switch it is associated with,

.. math::

    R_{d,u}(t) \\;=\\; \\frac{\\alpha C_{d,u} - \\beta \\, Q_{d,u}(t-\\tau)/d}
                           {\\hat N_{d,u}(t-\\tau)}
    \\qquad\\text{(eq. 2)}

with the *effective* number of flows

.. math::

    \\hat N_{d,u}(t-\\tau) \\;=\\; \\frac{S_{d,u}(t)}{R_{d,u}(t-\\tau)}
    \\qquad\\text{(eq. 3)}

and the (optionally priority-weighted) sum of flow bottleneck rates

.. math::

    S_{d,u}(t) \\;=\\; \\sum_j \\wp^j_{d,u} R^j_{d,u}(t)
    \\qquad\\text{(eq. 4 / eq. 6)}.

The simplified variant (eq. 5) replaces the flow-rate sum with the measured
arrival rate: ``R(t) = (αC − βQ/d) · R(t−τ) / Λ(t)``.

Equation 3 is what makes the allocation max-min fair: a flow bottlenecked
elsewhere at rate ``R_j < R(t−τ)`` only counts as ``R_j / R(t−τ)`` of a flow,
so the capacity it cannot use is redistributed to flows that can.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple


@dataclass
class ScdaParams:
    """Tunable constants of the SCDA rate metric.

    Attributes
    ----------
    alpha:
        Target utilisation of the link (the paper's α stability parameter).
        Keeping α slightly below 1 leaves headroom so queues drain.
    beta:
        Queue-drain gain (the paper's β): how aggressively standing queues
        are subtracted from the advertised capacity.
    control_interval_s:
        τ — the period at which RMs/RAs recompute the metric.  The paper
        suggests the average (or maximum) RTT of the flows of the block
        server; datacenter RTTs put this in the 10-100 ms range.
    drain_time_s:
        ``d`` in equations 2 and 5 — the time horizon over which a standing
        queue should be drained.  Defaults to the control interval when
        left at 0.
    min_rate_bps:
        Floor on the advertised rate so flows never starve completely.
    """

    alpha: float = 0.95
    beta: float = 1.0
    control_interval_s: float = 0.010
    drain_time_s: float = 0.0
    min_rate_bps: float = 1e3

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.beta < 0.0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")
        if self.control_interval_s <= 0.0:
            raise ValueError("control_interval_s must be positive")
        if self.drain_time_s < 0.0:
            raise ValueError("drain_time_s must be non-negative")
        if self.min_rate_bps <= 0.0:
            raise ValueError("min_rate_bps must be positive")

    @property
    def effective_drain_time_s(self) -> float:
        """``d``: the explicit drain time, or τ when unset."""
        return self.drain_time_s if self.drain_time_s > 0.0 else self.control_interval_s


def weighted_rate_sum(
    flow_rates: Iterable[float], weights: Optional[Iterable[float]] = None
) -> float:
    """``S = Σ_j ℘_j · R_j`` (equations 4 and 6).

    ``weights`` defaults to 1.0 for every flow (plain equation 4).
    """
    rates = list(flow_rates)
    if weights is None:
        return float(sum(rates))
    weight_list = list(weights)
    if len(weight_list) != len(rates):
        raise ValueError(
            f"got {len(rates)} rates but {len(weight_list)} weights; they must match"
        )
    for w in weight_list:
        if w <= 0:
            raise ValueError(f"priority weights must be positive, got {w}")
    return float(sum(w * r for w, r in zip(weight_list, rates)))


def effective_flow_count(rate_sum: float, previous_rate: float) -> float:
    """``N̂ = S / R(t−τ)`` (equation 3).

    A flow running at exactly the previous advertised rate counts as one
    flow; a flow bottlenecked elsewhere counts as a fraction.
    """
    if previous_rate <= 0.0:
        raise ValueError(f"previous rate must be positive, got {previous_rate}")
    if rate_sum < 0.0:
        raise ValueError(f"rate sum must be non-negative, got {rate_sum}")
    return rate_sum / previous_rate


def effective_capacity(
    params: ScdaParams, capacity_bps: float, queue_bytes: float, reserved_bps: float = 0.0
) -> float:
    """``αC − βQ/d`` (the numerator of eq. 2), minus explicit reservations.

    Section IV-C: when flows reserve a total of ``reserved_bps``, the capacity
    shared by the remaining flows shrinks by that amount.
    """
    if capacity_bps <= 0.0:
        raise ValueError("capacity must be positive")
    if queue_bytes < 0.0:
        raise ValueError("queue size must be non-negative")
    if reserved_bps < 0.0:
        raise ValueError("reserved bandwidth must be non-negative")
    queue_bits = queue_bytes * 8.0
    cap = params.alpha * (capacity_bps - reserved_bps) - params.beta * queue_bits / params.effective_drain_time_s
    return max(cap, 0.0)


def link_rate(
    params: ScdaParams,
    capacity_bps: float,
    queue_bytes: float,
    rate_sum_bps: float,
    previous_rate_bps: float,
    reserved_bps: float = 0.0,
) -> float:
    """One application of equation 2.

    Returns the new advertised per-flow rate for the link.  The result is
    clamped to ``[params.min_rate_bps, effective capacity]``: a link with no
    (or only fractional) flows advertises the whole effective capacity, which
    is what allows a single unconstrained flow to use the entire link.
    """
    cap = effective_capacity(params, capacity_bps, queue_bytes, reserved_bps)
    if cap <= 0.0:
        return params.min_rate_bps
    n_eff = effective_flow_count(rate_sum_bps, previous_rate_bps) if rate_sum_bps > 0 else 0.0
    if n_eff <= 1.0:
        # Fewer than one effective flow: the whole effective capacity is available.
        rate = cap
    else:
        rate = cap / n_eff
    return float(min(max(rate, params.min_rate_bps), cap))


def simplified_link_rate(
    params: ScdaParams,
    capacity_bps: float,
    queue_bytes: float,
    previous_rate_bps: float,
    arrival_bits: float,
    reserved_bps: float = 0.0,
) -> float:
    """One application of the simplified metric (equation 5).

    ``arrival_bits`` is ``L`` — the bits that arrived at the link during the
    last control interval; ``Λ = L / τ``.
    """
    if arrival_bits < 0.0:
        raise ValueError("arrival_bits must be non-negative")
    cap = effective_capacity(params, capacity_bps, queue_bytes, reserved_bps)
    if cap <= 0.0:
        return params.min_rate_bps
    arrival_rate = arrival_bits / params.control_interval_s
    if arrival_rate <= 0.0:
        return cap
    rate = cap * previous_rate_bps / arrival_rate
    return float(min(max(rate, params.min_rate_bps), cap))


@dataclass
class LinkRateState:
    """Mutable per-link state carried across control intervals."""

    rate_bps: float
    n_eff: float = 0.0
    rate_sum_bps: float = 0.0
    sla_violated: bool = False
    updates: int = 0


class LinkRateCalculator:
    """Applies equation 2 (or 5) to one directed link every control interval.

    The calculator is the computational heart of both the RM (for the block
    server access links) and the RA (for the switch uplinks/downlinks).
    """

    def __init__(
        self,
        capacity_bps: float,
        params: Optional[ScdaParams] = None,
        use_simplified: bool = False,
        name: str = "",
    ) -> None:
        if capacity_bps <= 0.0:
            raise ValueError("capacity must be positive")
        self.capacity_bps = float(capacity_bps)
        self.params = params or ScdaParams()
        self.use_simplified = bool(use_simplified)
        self.name = name
        self.state = LinkRateState(rate_bps=self.params.alpha * self.capacity_bps)

    # -- queries -------------------------------------------------------------------
    @property
    def current_rate_bps(self) -> float:
        """The most recently advertised per-flow rate R(t)."""
        return self.state.rate_bps

    @property
    def effective_flows(self) -> float:
        """The most recent effective flow count N̂."""
        return self.state.n_eff

    @property
    def sla_violated(self) -> bool:
        """True if the last update detected S exceeding the effective capacity."""
        return self.state.sla_violated

    def effective_capacity_bps(self, queue_bytes: float = 0.0, reserved_bps: float = 0.0) -> float:
        """The capacity term ``αC − βQ/d`` for a given queue size."""
        return effective_capacity(self.params, self.capacity_bps, queue_bytes, reserved_bps)

    # -- updates --------------------------------------------------------------------
    def update(
        self,
        queue_bytes: float,
        flow_rates_bps: Sequence[float],
        weights: Optional[Sequence[float]] = None,
        reserved_bps: float = 0.0,
        arrival_bits: Optional[float] = None,
    ) -> float:
        """Advance one control interval and return the new advertised rate.

        Parameters
        ----------
        queue_bytes:
            Queue length of the associated switch interface at the end of the
            previous interval (``Q(t−τ)``), read straight off the switch.
        flow_rates_bps:
            The bottleneck rates ``R_j`` of the flows currently crossing the
            link (their delivered rates in the previous interval).
        weights:
            Optional priority weights ``℘_j`` (equation 6).
        reserved_bps:
            Total explicitly reserved bandwidth on this link (Section IV-C).
        arrival_bits:
            Bits that arrived during the previous interval; only used by the
            simplified metric (equation 5).
        """
        prev_rate = self.state.rate_bps
        rate_sum = weighted_rate_sum(flow_rates_bps, weights)

        if self.use_simplified:
            new_rate = simplified_link_rate(
                self.params,
                self.capacity_bps,
                queue_bytes,
                prev_rate,
                arrival_bits if arrival_bits is not None else rate_sum * self.params.control_interval_s,
                reserved_bps,
            )
        else:
            new_rate = link_rate(
                self.params, self.capacity_bps, queue_bytes, rate_sum, prev_rate, reserved_bps
            )

        cap = self.effective_capacity_bps(queue_bytes, reserved_bps)
        self.state.rate_sum_bps = rate_sum
        self.state.n_eff = rate_sum / prev_rate if prev_rate > 0 else 0.0
        self.state.sla_violated = rate_sum > cap + 1e-9
        self.state.rate_bps = new_rate
        self.state.updates += 1
        return new_rate

    def reset(self) -> None:
        """Forget all history (used between experiments)."""
        self.state = LinkRateState(rate_bps=self.params.alpha * self.capacity_bps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LinkRateCalculator {self.name or 'link'} rate={self.state.rate_bps / 1e6:.1f} Mbps "
            f"n_eff={self.state.n_eff:.2f}>"
        )
