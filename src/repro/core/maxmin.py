"""The SCDA max/min exchange over the RM/RA tree (Section VI-A, Figure 2).

:class:`ScdaTree` instantiates one :class:`~repro.core.monitors.ResourceMonitor`
per block server and one :class:`~repro.core.allocators.ResourceAllocator` per
switch, wired according to the datacenter tree.  Every control interval
:meth:`ScdaTree.run_round` performs

1. the *measurement* step — every RM applies equation 2 to its access links
   and caps the result with the server's other-resource rates,
2. the *upward* pass — RAs aggregate their children level by level, compute
   their own link rates and track the best block server of their subtree, and
3. the *downward* pass — every RM receives, for each tree level ``h``, the
   minimum of the link rates between the server and level ``h`` (the ``Ř``
   values of Figure 2), which is what the NNS uses to pace on-going flows and
   to choose replica sources.

Links that are not owned by any RM or RA (the external-client access links,
and redundant parallel links of non-tree fabrics) get standalone link-rate
calculators so that every link in the topology always has an advertised rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.allocators import BestServer, ChildMetrics, RaSummary, ResourceAllocator
from repro.core.monitors import OtherResourceModel, ResourceMonitor, RmReport
from repro.core.rate_metric import LinkRateCalculator, ScdaParams
from repro.network.flow import Flow
from repro.network.topology import Link, Node, NodeKind, Topology


@dataclass
class HostRateMetrics:
    """Whole-datacenter rates of one block server (used for server selection).

    ``up_bps`` is the rate at which content can be *read from* the server all
    the way out of the datacenter tree; ``down_bps`` the rate at which content
    can be *written to* it; ``min_bps`` the bidirectional rate relevant for
    interactive content (Section VII-A).
    """

    host_id: str
    up_bps: float
    down_bps: float

    @property
    def min_bps(self) -> float:
        return min(self.up_bps, self.down_bps)


@dataclass
class LevelRates:
    """Per-level rates of one host: ``level -> (uplink_bps, downlink_bps)``."""

    host_id: str
    rates: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def up_to(self, level: int) -> float:
        return self.rates.get(level, self.rates.get(0, (float("inf"), float("inf"))))[0]

    def down_to(self, level: int) -> float:
        return self.rates.get(level, self.rates.get(0, (float("inf"), float("inf"))))[1]


class ScdaTree:
    """The RM/RA hierarchy over a datacenter topology."""

    def __init__(
        self,
        topology: Topology,
        params: Optional[ScdaParams] = None,
        other_resources: Optional[OtherResourceModel] = None,
        use_simplified_metric: bool = False,
    ) -> None:
        self.topology = topology
        self.params = params or ScdaParams()
        self.other_resources = other_resources or OtherResourceModel()
        self.use_simplified_metric = bool(use_simplified_metric)

        self.monitors: Dict[str, ResourceMonitor] = {}
        self.allocators: Dict[str, ResourceAllocator] = {}
        #: calculators for links not owned by an RM or RA (client links, extra parallel links)
        self.extra_calculators: Dict[str, LinkRateCalculator] = {}
        #: link_id -> the calculator advertising that link's rate
        self._link_calc: Dict[str, LinkRateCalculator] = {}
        #: per-host level rates from the most recent downward pass
        self._level_rates: Dict[str, LevelRates] = {}
        self.rounds_completed = 0

        self._build()

    # -- construction -------------------------------------------------------------------
    def _build(self) -> None:
        topo = self.topology
        covered_links: set = set()

        for host in topo.hosts():
            uplink = topo.uplink_of(host)
            downlink = topo.downlink_to(host)
            if uplink is None or downlink is None:
                raise ValueError(
                    f"host {host.node_id} lacks an uplink or downlink; "
                    "every block server needs both"
                )
            rm = ResourceMonitor(
                host,
                uplink,
                downlink,
                self.params,
                self.other_resources,
                self.use_simplified_metric,
            )
            self.monitors[host.node_id] = rm
            self._link_calc[uplink.link_id] = rm.up_calc
            self._link_calc[downlink.link_id] = rm.down_calc
            covered_links.update((uplink.link_id, downlink.link_id))

        for switch in topo.switches():
            uplink = topo.uplink_of(switch)
            downlink = topo.downlink_to(switch)
            ra = ResourceAllocator(
                switch,
                max(switch.level, 1),
                uplink,
                downlink,
                self.params,
                self.use_simplified_metric,
            )
            self.allocators[switch.node_id] = ra
            if uplink is not None and ra.up_calc is not None:
                self._link_calc[uplink.link_id] = ra.up_calc
                covered_links.add(uplink.link_id)
            if downlink is not None and ra.down_calc is not None:
                self._link_calc[downlink.link_id] = ra.down_calc
                covered_links.add(downlink.link_id)

        for link in topo.links:
            if link.link_id in covered_links:
                continue
            calc = LinkRateCalculator(
                link.capacity_bps, self.params, self.use_simplified_metric, name=link.link_id
            )
            self.extra_calculators[link.link_id] = calc
            self._link_calc[link.link_id] = calc

    # -- queries --------------------------------------------------------------------------
    @property
    def hmax(self) -> int:
        """The highest switch level of the topology (``hmax`` in the paper)."""
        return self.topology.max_level()

    def monitor_of(self, host_id: str) -> ResourceMonitor:
        """The RM of a block server."""
        return self.monitors[host_id]

    def allocator_of(self, switch_id: str) -> ResourceAllocator:
        """The RA of a switch."""
        return self.allocators[switch_id]

    def link_rate_bps(self, link: Link) -> float:
        """The rate currently advertised for ``link`` (equation 2 output)."""
        calc = self._link_calc.get(link.link_id)
        if calc is None:
            return link.capacity_bps * self.params.alpha
        return calc.current_rate_bps

    def host_metrics(self, host_ids: Optional[Sequence[str]] = None) -> List[HostRateMetrics]:
        """Whole-datacenter (level ``hmax``) rates per block server."""
        result = []
        ids = host_ids if host_ids is not None else list(self.monitors)
        top = self.hmax
        for host_id in ids:
            if host_id not in self.monitors:
                continue
            rates = self._level_rates.get(host_id)
            if rates is None:
                rm = self.monitors[host_id]
                result.append(
                    HostRateMetrics(host_id, rm.capped_up_bps, rm.capped_down_bps)
                )
            else:
                result.append(HostRateMetrics(host_id, rates.up_to(top), rates.down_to(top)))
        return result

    def level_rates_of(self, host_id: str) -> LevelRates:
        """Per-level rates of one host (empty before the first round)."""
        return self._level_rates.get(host_id, LevelRates(host_id))

    def sla_violations(self) -> List[str]:
        """Ids of RMs/RAs whose last round detected an SLA violation."""
        violated = [
            rm.host.node_id
            for rm in self.monitors.values()
            if rm.last_report is not None and rm.last_report.sla_violated
        ]
        violated.extend(
            ra.switch.node_id
            for ra in self.allocators.values()
            if ra.last_summary is not None and ra.last_summary.sla_violated
        )
        return violated

    # -- one control interval ---------------------------------------------------------------
    def run_round(
        self,
        link_flows: Mapping[str, Sequence[Flow]],
        now: float,
        link_reservations: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Run the measurement, upward and downward passes for one interval.

        Parameters
        ----------
        link_flows:
            ``link_id -> flows currently crossing that link`` (provided by the
            controller from the fabric's active-flow set), or an
            :class:`~repro.network.incidence.IncidenceCache` — the fabric's
            incrementally-maintained incidence — whose per-epoch map is used
            directly instead of a freshly built dict.
        now:
            Current simulated time.
        link_reservations:
            Total explicitly reserved bandwidth per link id (Section IV-C).
        """
        if hasattr(link_flows, "link_flows_map"):
            link_flows = link_flows.link_flows_map()
        reservations = dict(link_reservations or {})

        def flows_on(link: Optional[Link]) -> Sequence[Flow]:
            if link is None:
                return ()
            return link_flows.get(link.link_id, ())

        def reserved_on(link: Optional[Link]) -> float:
            if link is None:
                return 0.0
            return reservations.get(link.link_id, 0.0)

        # 1. Measurement at every RM.
        reports: Dict[str, RmReport] = {}
        for host_id, rm in self.monitors.items():
            reports[host_id] = rm.measure(
                flows_up=flows_on(rm.uplink),
                flows_down=flows_on(rm.downlink),
                now=now,
                reserved_up_bps=reserved_on(rm.uplink),
                reserved_down_bps=reserved_on(rm.downlink),
            )

        # Standalone calculators (client access links etc.).
        for link in self.topology.links:
            calc = self.extra_calculators.get(link.link_id)
            if calc is None:
                continue
            flows = flows_on(link)
            calc.update(
                queue_bytes=link.queue_bytes,
                flow_rates_bps=[f.current_rate_bps for f in flows],
                # Per-session weights: the S = Σ ℘_j·R_j sums *aggregate*
                # delivered rates, which already carry an aggregate flow's
                # multiplicity — effective (×N) weights would double-count it.
                weights=[f.priority_weight for f in flows],
                reserved_bps=reserved_on(link),
            )

        # 2. Upward pass, level by level.
        summaries: Dict[str, RaSummary] = {}
        max_level = self.hmax
        for level in range(1, max_level + 1):
            for switch_id, ra in self.allocators.items():
                if ra.level != level:
                    continue
                own_up, own_down = ra.compute_own_rates(
                    flows_up=flows_on(ra.uplink),
                    flows_down=flows_on(ra.downlink),
                    reserved_up_bps=reserved_on(ra.uplink),
                    reserved_down_bps=reserved_on(ra.downlink),
                )
                children = self.topology.children(ra.switch)
                child_metrics: List[ChildMetrics] = []
                for child in children:
                    if child.kind is NodeKind.HOST and child.node_id in reports:
                        rep = reports[child.node_id]
                        child_metrics.append(
                            ChildMetrics(
                                child_id=child.node_id,
                                rate_up_bps=rep.rate_up_bps,
                                rate_down_bps=rep.rate_down_bps,
                                rate_sum_up_bps=rep.rate_sum_up_bps,
                                rate_sum_down_bps=rep.rate_sum_down_bps,
                                best_up_host=child.node_id,
                                best_down_host=child.node_id,
                                best_min_host=child.node_id,
                                sla_violated=rep.sla_violated,
                            )
                        )
                    elif child.node_id in summaries:
                        summary = summaries[child.node_id]
                        child_metrics.append(
                            ChildMetrics(
                                child_id=child.node_id,
                                rate_up_bps=summary.best_up.rate_bps if summary.best_up else 0.0,
                                rate_down_bps=summary.best_down.rate_bps
                                if summary.best_down
                                else 0.0,
                                rate_sum_up_bps=summary.aggregated_rate_sum_up_bps,
                                rate_sum_down_bps=summary.aggregated_rate_sum_down_bps,
                                best_up_host=summary.best_up.host_id if summary.best_up else "",
                                best_down_host=summary.best_down.host_id
                                if summary.best_down
                                else "",
                                best_min_host=summary.best_min.host_id if summary.best_min else "",
                                sla_violated=summary.sla_violated,
                            )
                        )
                summaries[switch_id] = ra.aggregate(child_metrics, own_up, own_down)

        # 3. Downward pass: per-host cumulative minimum rates up to each level.
        for host_id, rm in self.monitors.items():
            level_rates = LevelRates(host_id)
            up = rm.capped_up_bps
            down = rm.capped_down_bps
            level_rates.rates[0] = (up, down)
            node = rm.host
            level = 0
            parent = self.topology.parent(node)
            while parent is not None and parent.kind is NodeKind.SWITCH:
                level = parent.level
                ra = self.allocators.get(parent.node_id)
                if ra is not None:
                    # Rates of the RA's own links constrain reaching *beyond* this
                    # level; reaching level ``level`` itself only crosses the links
                    # below it, already accumulated in ``up``/``down``.
                    level_rates.rates[level] = (up, down)
                    if ra.up_calc is not None:
                        up = min(up, ra.up_calc.current_rate_bps)
                    if ra.down_calc is not None:
                        down = min(down, ra.down_calc.current_rate_bps)
                else:  # pragma: no cover - defensive
                    level_rates.rates[level] = (up, down)
                node = parent
                parent = self.topology.parent(node)
            # Any levels above the last switch reachable keep the final values.
            for lvl in range(level + 1, self.hmax + 1):
                level_rates.rates[lvl] = (up, down)
            self._level_rates[host_id] = level_rates
            for lvl, (u, d) in level_rates.rates.items():
                rm.receive_level_rate(lvl, u, d)

        self.rounds_completed += 1

    def reset(self) -> None:
        """Reset every calculator (used between experiments)."""
        for rm in self.monitors.values():
            rm.up_calc.reset()
            rm.down_calc.reset()
            rm.level_rates.clear()
        for ra in self.allocators.values():
            if ra.up_calc is not None:
                ra.up_calc.reset()
            if ra.down_calc is not None:
                ra.down_calc.reset()
        for calc in self.extra_calculators.values():
            calc.reset()
        self._level_rates.clear()
        self.rounds_completed = 0
