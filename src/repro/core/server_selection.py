"""Content-aware cloud server selection (Section VII of the paper).

SCDA treats the content classes of Section II-B differently when choosing a
block server:

* **interactive** content (high write *and* high read, interleaved within a
  few seconds) goes to the server with the highest ``min(R̂_d, R̂_u)`` —
  the interaction is limited by whichever direction is slower;
* **semi-interactive** content (high write *or* high read) is written to the
  server with the best downlink rate and then replicated to the server with
  the best uplink rate, so that later reads are fast;
* **passive** content (low write, low read) is written fast, then replicated
  to *dormant* servers — servers whose uplink rate exceeds the scale-down
  threshold ``R_scale`` because almost nothing is being read from them — so
  that those servers can stay in low-power states;
* the **power-aware** variant divides the rate metric by the server's power
  draw ``P(t)`` and picks the best rate-per-watt server (Section VII-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.maxmin import HostRateMetrics


class SelectionObjective(enum.Enum):
    """Which rate the selection maximises."""

    BEST_DOWNLINK = "best-downlink"      #: fastest to write to
    BEST_UPLINK = "best-uplink"          #: fastest to read from
    BEST_BIDIRECTIONAL = "best-min"      #: fastest min(up, down) — interactive
    BEST_RATE_PER_WATT = "rate-per-watt" #: power-aware variant


@dataclass
class SelectionMetrics:
    """Everything the selector needs to know about one candidate server."""

    host_id: str
    up_bps: float
    down_bps: float
    power_watts: float = 1.0
    dormant: bool = False

    @property
    def min_bps(self) -> float:
        return min(self.up_bps, self.down_bps)

    @classmethod
    def from_host_rate_metrics(
        cls,
        metrics: HostRateMetrics,
        power_watts: float = 1.0,
        dormant: bool = False,
    ) -> "SelectionMetrics":
        return cls(metrics.host_id, metrics.up_bps, metrics.down_bps, power_watts, dormant)


class SelectionError(Exception):
    """Raised when no candidate server satisfies a selection policy."""


def _argmax(
    candidates: Sequence[SelectionMetrics], key: Callable[[SelectionMetrics], float]
) -> SelectionMetrics:
    if not candidates:
        raise SelectionError("no candidate servers")
    best = candidates[0]
    best_key = key(best)
    for cand in candidates[1:]:
        k = key(cand)
        # Strict improvement keeps ties deterministic (first wins).
        if k > best_key:
            best, best_key = cand, k
    return best


class SelectionPolicy:
    """Base class: pick a server for the initial write and for the replica."""

    name = "base"

    def select_primary(self, candidates: Sequence[SelectionMetrics]) -> SelectionMetrics:
        """Server that receives the client's write."""
        raise NotImplementedError

    def select_replica(
        self, candidates: Sequence[SelectionMetrics], primary: Optional[SelectionMetrics] = None
    ) -> SelectionMetrics:
        """Server that receives the replica (defaults to the primary policy)."""
        others = [c for c in candidates if primary is None or c.host_id != primary.host_id]
        return self.select_primary(others or list(candidates))


class InteractivePolicy(SelectionPolicy):
    """Section VII-A: maximise ``min(R̂_d, R̂_u)``."""

    name = "interactive"

    def __init__(self, avoid_dormant: bool = True) -> None:
        self.avoid_dormant = bool(avoid_dormant)

    def select_primary(self, candidates: Sequence[SelectionMetrics]) -> SelectionMetrics:
        pool = list(candidates)
        if self.avoid_dormant:
            active = [c for c in pool if not c.dormant]
            if active:
                pool = active
        return _argmax(pool, lambda c: c.min_bps)


class SemiInteractivePolicy(SelectionPolicy):
    """Section VII-B: write to best downlink, replicate to best uplink."""

    name = "semi-interactive"

    def __init__(self, avoid_dormant: bool = True) -> None:
        self.avoid_dormant = bool(avoid_dormant)

    def _pool(self, candidates: Sequence[SelectionMetrics]) -> List[SelectionMetrics]:
        pool = list(candidates)
        if self.avoid_dormant:
            active = [c for c in pool if not c.dormant]
            if active:
                return active
        return pool

    def select_primary(self, candidates: Sequence[SelectionMetrics]) -> SelectionMetrics:
        return _argmax(self._pool(candidates), lambda c: c.down_bps)

    def select_replica(
        self, candidates: Sequence[SelectionMetrics], primary: Optional[SelectionMetrics] = None
    ) -> SelectionMetrics:
        pool = [
            c for c in self._pool(candidates) if primary is None or c.host_id != primary.host_id
        ]
        if not pool:
            pool = self._pool(candidates)
        return _argmax(pool, lambda c: c.up_bps)


class PassivePolicy(SelectionPolicy):
    """Section VII-C: write fast, replicate onto dormant (scaled-down) servers.

    A server is "dormant" when its uplink rate exceeds ``R_scale`` — i.e. it
    is so lightly loaded that it can be kept in a low-power state.  Passive
    content is steered there, which keeps the active servers for interactive
    traffic and lets the dormant ones stay dormant.
    """

    name = "passive"

    def __init__(self, scale_down_threshold_bps: float) -> None:
        if scale_down_threshold_bps <= 0:
            raise ValueError("scale_down_threshold_bps must be positive")
        self.scale_down_threshold_bps = float(scale_down_threshold_bps)

    def select_primary(self, candidates: Sequence[SelectionMetrics]) -> SelectionMetrics:
        return _argmax(list(candidates), lambda c: c.down_bps)

    def select_replica(
        self, candidates: Sequence[SelectionMetrics], primary: Optional[SelectionMetrics] = None
    ) -> SelectionMetrics:
        pool = [c for c in candidates if primary is None or c.host_id != primary.host_id]
        dormant_pool = [
            c for c in pool if c.dormant or c.up_bps > self.scale_down_threshold_bps
        ]
        if dormant_pool:
            return _argmax(dormant_pool, lambda c: c.up_bps)
        if not pool:
            pool = list(candidates)
        return _argmax(pool, lambda c: c.up_bps)


class PowerAwarePolicy(SelectionPolicy):
    """Section VII-D: maximise rate per watt instead of the raw rate."""

    name = "power-aware"

    def __init__(self, objective: SelectionObjective = SelectionObjective.BEST_BIDIRECTIONAL) -> None:
        self.objective = objective

    def _metric(self, candidate: SelectionMetrics) -> float:
        power = max(candidate.power_watts, 1e-9)
        if self.objective is SelectionObjective.BEST_DOWNLINK:
            return candidate.down_bps / power
        if self.objective is SelectionObjective.BEST_UPLINK:
            return candidate.up_bps / power
        return candidate.min_bps / power

    def select_primary(self, candidates: Sequence[SelectionMetrics]) -> SelectionMetrics:
        return _argmax(list(candidates), self._metric)


class RandomPolicy(SelectionPolicy):
    """Uniform random selection — the *baseline* behaviour (RandTCP / VL2 / Hedera).

    Not part of SCDA; included here so the baseline schemes can share the
    selector machinery.
    """

    name = "random"

    def __init__(self, rng) -> None:
        if rng is None:
            raise ValueError("RandomPolicy requires a random generator")
        self.rng = rng

    def select_primary(self, candidates: Sequence[SelectionMetrics]) -> SelectionMetrics:
        pool = list(candidates)
        if not pool:
            raise SelectionError("no candidate servers")
        return pool[int(self.rng.integers(0, len(pool)))]


class ServerSelector:
    """Dispatches to the right policy per content class.

    The mapping follows Section VII: interactive (HWHR) content uses
    :class:`InteractivePolicy`, semi-interactive (HWLR / LWHR) uses
    :class:`SemiInteractivePolicy`, passive (LWLR) uses :class:`PassivePolicy`.
    """

    def __init__(
        self,
        scale_down_threshold_bps: float = 50e6,
        power_aware: bool = False,
        avoid_dormant_for_active: bool = True,
    ) -> None:
        self.interactive = InteractivePolicy(avoid_dormant=avoid_dormant_for_active)
        self.semi_interactive = SemiInteractivePolicy(avoid_dormant=avoid_dormant_for_active)
        self.passive = PassivePolicy(scale_down_threshold_bps)
        self.power_aware_policy = PowerAwarePolicy()
        self.power_aware = bool(power_aware)

    def policy_for(self, content_class: "object") -> SelectionPolicy:
        """The policy handling a :class:`repro.cluster.content.ContentClass`."""
        # Import here to avoid a circular dependency at module load time.
        from repro.cluster.content import ContentClass

        if self.power_aware:
            return self.power_aware_policy
        if content_class is ContentClass.HWHR:
            return self.interactive
        if content_class in (ContentClass.HWLR, ContentClass.LWHR):
            return self.semi_interactive
        return self.passive

    def select_primary(
        self, content_class: "object", candidates: Sequence[SelectionMetrics]
    ) -> SelectionMetrics:
        """Server for the initial write of content of the given class."""
        return self.policy_for(content_class).select_primary(candidates)

    def select_replica(
        self,
        content_class: "object",
        candidates: Sequence[SelectionMetrics],
        primary: Optional[SelectionMetrics] = None,
    ) -> SelectionMetrics:
        """Server for the replica of content of the given class."""
        return self.policy_for(content_class).select_replica(candidates, primary)

    def select_read_source(
        self, content_class: "object", replicas: Sequence[SelectionMetrics]
    ) -> SelectionMetrics:
        """Which replica to read from: the one with the best uplink rate."""
        if not replicas:
            raise SelectionError("content has no replicas to read from")
        return _argmax(list(replicas), lambda c: c.up_bps)
