"""OpenFlow-based QoS prioritization (Section IV-B).

The paper notes that the priority mechanism can alternatively be enforced by
OpenFlow switches: each switch already keeps a per-flow packet counter
``Cnt_j``; serving the flow with the *smallest* counter first approximates
shortest-job-first, because flows that have already sent a lot are delayed
(their ACKs slow down), reducing their rates.  RMs can also push explicit
priorities to the switch through the RA.

This module models that enforcement point at flow granularity: an
:class:`OpenFlowSwitch` tracks per-flow packet counts, and the
:class:`OpenFlowSjfScheduler` converts the counters (or pushed priorities)
into the per-flow weights consumed by the rate allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.network.flow import Flow


@dataclass
class FlowTableEntry:
    """One OpenFlow flow-table entry with its counters."""

    flow_id: int
    packet_count: int = 0
    byte_count: float = 0.0
    priority: Optional[float] = None  #: priority pushed by an RM/RA, if any


class OpenFlowSwitch:
    """A minimal OpenFlow switch model: per-flow counters plus priority hints."""

    def __init__(self, switch_id: str, mtu_bytes: float = 1500.0) -> None:
        if mtu_bytes <= 0:
            raise ValueError("mtu_bytes must be positive")
        self.switch_id = switch_id
        self.mtu_bytes = float(mtu_bytes)
        self.table: Dict[int, FlowTableEntry] = {}

    def observe(self, flow: Flow, bytes_sent: float) -> None:
        """Account ``bytes_sent`` of ``flow`` through this switch."""
        if bytes_sent < 0:
            raise ValueError("bytes_sent must be non-negative")
        entry = self.table.setdefault(flow.flow_id, FlowTableEntry(flow.flow_id))
        entry.byte_count += bytes_sent
        entry.packet_count += int(bytes_sent // self.mtu_bytes) + (1 if bytes_sent > 0 else 0)

    def set_priority(self, flow_id: int, priority: float) -> None:
        """Install an explicit priority pushed down from an RA."""
        if priority <= 0:
            raise ValueError("priority must be positive")
        entry = self.table.setdefault(flow_id, FlowTableEntry(flow_id))
        entry.priority = float(priority)

    def remove(self, flow_id: int) -> None:
        """Remove a finished flow's table entry."""
        self.table.pop(flow_id, None)

    def packet_count(self, flow_id: int) -> int:
        """The switch's packet counter for ``flow_id`` (0 if unknown)."""
        entry = self.table.get(flow_id)
        return entry.packet_count if entry else 0

    def service_order(self, flow_ids: Iterable[int]) -> List[int]:
        """Flows ordered the way the switch would serve them (fewest packets first)."""
        ids = list(flow_ids)
        return sorted(ids, key=lambda fid: (self.packet_count(fid), fid))


class OpenFlowSjfScheduler:
    """Turns switch counters into SJF-like priority weights.

    Flows that have sent fewer packets get proportionally larger weights, so
    the weighted allocation (equation 6) serves them faster — the same effect
    as the switch literally dequeuing their packets first.
    """

    def __init__(
        self,
        switch: OpenFlowSwitch,
        min_weight: float = 0.25,
        max_weight: float = 4.0,
    ) -> None:
        if not (0.0 < min_weight <= max_weight):
            raise ValueError("need 0 < min_weight <= max_weight")
        self.switch = switch
        self.min_weight = float(min_weight)
        self.max_weight = float(max_weight)

    def weights(self, flows: Sequence[Flow]) -> Dict[int, float]:
        """Per-flow weights; explicit priorities (if pushed) win over counters."""
        if not flows:
            return {}
        counts = {f.flow_id: self.switch.packet_count(f.flow_id) for f in flows}
        mean_count = max(1.0, sum(counts.values()) / len(counts))
        weights: Dict[int, float] = {}
        for flow in flows:
            entry = self.switch.table.get(flow.flow_id)
            if entry is not None and entry.priority is not None:
                raw = entry.priority
            else:
                # Fewer packets sent than average -> weight above 1 and vice versa.
                raw = mean_count / max(1.0, counts[flow.flow_id])
            weights[flow.flow_id] = float(min(max(raw, self.min_weight), self.max_weight))
        return weights

    def apply(self, flows: Sequence[Flow]) -> None:
        """Write the computed weights into ``flow.priority_weight``."""
        for flow_id_weight in self.weights(flows).items():
            flow_id, weight = flow_id_weight
            for flow in flows:
                if flow.flow_id == flow_id:
                    flow.priority_weight = weight
                    break
