"""The SCDA controller: glue between the RM/RA tree, the transport and the NNS.

The controller owns

* the :class:`~repro.core.maxmin.ScdaTree` (RMs + RAs + per-link calculators),
* the :class:`~repro.core.priority.PriorityManager` (equation 6 weights),
* the :class:`~repro.core.reservation.ReservationRegistry` (Section IV-C),
* the :class:`~repro.core.sla.SlaMonitor` (Section IV-A), and
* the :class:`~repro.core.server_selection.ServerSelector` (Section VII).

It implements the :class:`~repro.network.transport.scda.RateProvider`
interface consumed by the SCDA transport — per-flow allocations are the
minimum of the advertised rates of the links along the flow's path (the
``min(R_u, R_e2e, R_d)`` of Section IV) — and the server-selection interface
consumed by the name nodes.

The RM/RA computation runs every control interval τ.  The controller is
*lazy*: the round is (re)computed when allocations or selection metrics are
requested and the previous round is at least τ old, which is equivalent to a
periodic recomputation while flows are active but costs nothing while the
cloud is idle.  An explicit periodic timer can be attached for
continuous monitoring (e.g. the off-line diagnosis stream mentioned in the
paper's introduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.maxmin import HostRateMetrics, ScdaTree
from repro.core.monitors import OtherResourceModel
from repro.core.priority import PriorityManager, WeightPolicy
from repro.core.rate_metric import ScdaParams
from repro.core.reservation import ReservationRegistry
from repro.core.server_selection import SelectionMetrics, ServerSelector
from repro.core.sla import MitigationAction, SlaMonitor
from repro.network.flow import Flow
from repro.network.incidence import IncidenceCache
from repro.network.topology import Link, Node, Topology
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


@dataclass
class ScdaControllerConfig:
    """Controller tunables."""

    params: ScdaParams = field(default_factory=ScdaParams)
    scale_down_threshold_bps: float = 50e6
    power_aware_selection: bool = False
    use_simplified_metric: bool = False
    sla_mitigation: MitigationAction = MitigationAction.NONE
    sla_bandwidth_boost: float = 1.25
    selection_level: Optional[int] = None  #: None -> whole datacenter (hmax)
    #: How long a just-made placement decision keeps discounting a server's
    #: advertised rates.  The RM/RA rates only reflect a new flow once it
    #: actually starts sending (after the connection-setup exchange of
    #: Section VIII), so without this NNS-side bookkeeping every request
    #: arriving within the setup window would herd onto the same "idle" best
    #: server.  Set to 0 to disable (pure paper behaviour).
    placement_hint_ttl_s: float = 0.5


class ScdaController:
    """SCDA's distributed control plane, consolidated into one object.

    The paper notes the RMs and RAs are software components that "can be
    consolidated in a few powerful servers close to each other to minimize
    communication overheads"; this class is that consolidation.  The message
    exchanges of Figure 2 still happen explicitly inside
    :meth:`ScdaTree.run_round`, so per-component behaviour remains testable.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[ScdaControllerConfig] = None,
        other_resources: Optional[OtherResourceModel] = None,
        weight_policy: Optional[WeightPolicy] = None,
        power_lookup: Optional[Callable[[str, float], float]] = None,
        dormant_lookup: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or ScdaControllerConfig()
        self.other_resources = other_resources or OtherResourceModel()
        self.tree = ScdaTree(
            topology,
            self.config.params,
            self.other_resources,
            self.config.use_simplified_metric,
        )
        self.priority_manager = PriorityManager(weight_policy)
        self.reservations = ReservationRegistry()
        self.sla_monitor = SlaMonitor(
            mitigation=self.config.sla_mitigation,
            bandwidth_boost_factor=self.config.sla_bandwidth_boost,
            apply_bandwidth_boost=self._boost_location,
        )
        self.selector = ServerSelector(
            scale_down_threshold_bps=self.config.scale_down_threshold_bps,
            power_aware=self.config.power_aware_selection,
        )
        self.power_lookup = power_lookup
        self.dormant_lookup = dormant_lookup

        self.fabric = None  # set by attach_fabric
        self._last_round_time: Optional[float] = None
        self._monitor_timer: Optional[PeriodicTimer] = None
        self.rounds_run = 0
        #: host_id -> expiry times of recent placement decisions not yet
        #: visible in the RM/RA rates (see ScdaControllerConfig.placement_hint_ttl_s)
        self._pending_placements: Dict[str, List[float]] = {}

    # -- wiring -----------------------------------------------------------------------
    def attach_fabric(self, fabric) -> None:
        """Bind the controller to the fabric whose flows it allocates.

        Also subscribes to the fabric's topology-change notifications: the
        RM/RA calculators cache link capacities, so a runtime capacity change
        or link restoration (the dynamics layer) must refresh them the same
        way the SLA bandwidth boost does.
        """
        self.fabric = fabric
        register = getattr(fabric, "on_topology_changed", None)
        if register is not None:
            register(self._on_topology_changed)

    def _on_topology_changed(self, event: str, link: Link, now: float) -> None:
        calc = self.tree._link_calc.get(link.link_id)
        if calc is not None:
            calc.capacity_bps = link.capacity_bps

    def enable_periodic_monitoring(self) -> PeriodicTimer:
        """Run the control round on a fixed timer even when no flow triggers it.

        Control-round timers ride the simulator's shared timer wheel: every
        controller monitoring on the same τ grid lands in the same deadline
        bucket, one heap record per round instead of one per controller.
        """
        if self._monitor_timer is None:
            self._monitor_timer = PeriodicTimer(
                self.sim,
                self.config.params.control_interval_s,
                lambda now: self.control_round(now, force=True),
                wheel=self.sim.timer_wheel(),
            )
        return self._monitor_timer

    # -- the control round ---------------------------------------------------------------
    def control_round(self, now: float, force: bool = False) -> bool:
        """Run one RM/RA round if the previous one is at least τ old.

        Returns True when a round actually ran.
        """
        tau = self.config.params.control_interval_s
        if not force and self._last_round_time is not None and now - self._last_round_time < tau - 1e-12:
            return False

        flows: List[Flow] = list(self.fabric.active_flows) if self.fabric is not None else []
        self.priority_manager.refresh(flows, now)

        # The fabric maintains the link→flows incidence incrementally; fall
        # back to a one-shot build only when running detached from a fabric.
        incidence = getattr(self.fabric, "incidence", None)
        if incidence is None or not incidence.matches(flows):
            incidence = IncidenceCache(flows)

        link_reservations = self.reservations.link_reservation_map(self.topology.links)
        self.tree.run_round(incidence, now, link_reservations)
        self._last_round_time = now
        self.rounds_run += 1

        self._record_sla_violations(now)
        return True

    def _record_sla_violations(self, now: float) -> None:
        for host_id, rm in self.tree.monitors.items():
            report = rm.last_report
            if report is None or not report.sla_violated:
                continue
            demand = max(report.rate_sum_up_bps, report.rate_sum_down_bps)
            capacity = max(
                rm.up_calc.effective_capacity_bps(rm.uplink.queue_bytes),
                rm.down_calc.effective_capacity_bps(rm.downlink.queue_bytes),
            )
            self.sla_monitor.record(now, host_id, 0, demand, capacity)
        for switch_id, ra in self.tree.allocators.items():
            summary = ra.last_summary
            if summary is None or not summary.sla_violated:
                continue
            demand = max(
                summary.aggregated_rate_sum_up_bps, summary.aggregated_rate_sum_down_bps
            )
            capacity = 0.0
            if ra.up_calc is not None:
                capacity = max(capacity, ra.up_calc.effective_capacity_bps(ra.uplink.queue_bytes))
            if ra.down_calc is not None:
                capacity = max(
                    capacity, ra.down_calc.effective_capacity_bps(ra.downlink.queue_bytes)
                )
            self.sla_monitor.record(now, switch_id, ra.level, demand, capacity)

    def _boost_location(self, location: str, factor: float) -> None:
        """SLA mitigation: enlarge the capacity of the links at ``location``.

        Models switching traffic onto the reserve/backup links the paper says
        a datacenter can maintain for automatic SLA resolution.
        """
        if not self.topology.has_node(location):
            return
        node = self.topology.node(location)
        boosted_links: List[Link] = []
        uplink = self.topology.uplink_of(node)
        downlink = self.topology.downlink_to(node)
        boosted_links.extend(l for l in (uplink, downlink) if l is not None)
        for link in boosted_links:
            link.capacity_bps *= factor
        # The calculators cache capacities; refresh them.
        for link in boosted_links:
            calc = self.tree._link_calc.get(link.link_id)
            if calc is not None:
                calc.capacity_bps = link.capacity_bps

    # -- RateProvider interface (consumed by ScdaTransport) --------------------------------
    def flow_allocations(self, flows: Sequence[Flow], now: float) -> Mapping[int, float]:
        """Per-flow explicit rates (Section IV): ``min(R_send,other, R_e2e, R_recv,other)``.

        ``R_e2e`` is the minimum advertised rate over the links of the flow's
        path; the sender's uplink and the receiver's downlink other-resource
        rates (CPU/disk, Section VI-A) cap it further.
        """
        self.control_round(now)
        allocations: Dict[int, float] = {}
        for flow in flows:
            rate = float("inf")
            for link in flow.path:
                rate = min(rate, self.tree.link_rate_bps(link))
            # R_other at the two endpoints (only hosts have RMs / resource limits).
            send_other, _ = self.other_resources.limits(flow.src.node_id, now)
            _, recv_other = self.other_resources.limits(flow.dst.node_id, now)
            rate = min(rate, send_other, recv_other)
            if rate == float("inf"):
                rate = 0.0
            elif flow.multiplicity != 1:
                # The advertised rate is per session; an aggregate flow
                # stands in for N sessions and demands N times it.
                rate *= flow.multiplicity
            allocations[flow.flow_id] = rate
        return allocations

    def on_flow_start(self, flow: Flow, now: float) -> None:
        """RateProvider hook — admit any requested reservation."""
        requested = flow.meta.get("reserve_bps")
        if requested:
            self.reservations.admit(flow, float(requested))

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        """RateProvider hook — release reservations of finished flows."""
        self.reservations.release(flow.flow_id)

    # -- server selection interface (consumed by the NNS) -------------------------------------
    def note_placement(self, host_id: str, now: Optional[float] = None) -> None:
        """Record that the NNS just directed a request to ``host_id``.

        Until the corresponding flow starts sending, the RM/RA rates cannot see
        it; this hint temporarily discounts the server's advertised rates so a
        burst of requests arriving within one setup window spreads over several
        servers instead of herding onto one.
        """
        ttl = self.config.placement_hint_ttl_s
        if ttl <= 0:
            return
        if now is None:
            now = self.sim.now
        self._pending_placements.setdefault(host_id, []).append(now + ttl)

    def pending_placements(self, host_id: str, now: Optional[float] = None) -> int:
        """Number of recent, still-unexpired placement hints for ``host_id``."""
        if now is None:
            now = self.sim.now
        entries = self._pending_placements.get(host_id)
        if not entries:
            return 0
        live = [t for t in entries if t > now]
        if len(live) != len(entries):
            if live:
                self._pending_placements[host_id] = live
            else:
                del self._pending_placements[host_id]
        return len(live)

    def selection_metrics(
        self, candidate_ids: Optional[Sequence[str]] = None, now: Optional[float] = None
    ) -> List[SelectionMetrics]:
        """Current per-BS metrics for the selection policies of Section VII."""
        if now is None:
            now = self.sim.now
        self.control_round(now)
        metrics = []
        for host_metric in self.tree.host_metrics(candidate_ids):
            power = 1.0
            dormant = False
            if self.power_lookup is not None:
                power = max(float(self.power_lookup(host_metric.host_id, now)), 1e-9)
            if self.dormant_lookup is not None:
                dormant = bool(self.dormant_lookup(host_metric.host_id))
            else:
                # Dormancy is a deliberate power-state decision made by the
                # energy manager (Section VII-C); without one, no server is
                # dormant.  The passive-content policy still prefers
                # nearly-idle servers through the R_scale threshold it applies
                # to the uplink rates directly.
                dormant = False
            # Discount servers the NNS has just sent still-unstarted work to.
            discount = 1.0 + self.pending_placements(host_metric.host_id, now)
            metrics.append(
                SelectionMetrics(
                    host_id=host_metric.host_id,
                    up_bps=host_metric.up_bps / discount,
                    down_bps=host_metric.down_bps / discount,
                    power_watts=power,
                    dormant=dormant,
                )
            )
        return metrics

    def select_primary(
        self, content_class, candidate_ids: Optional[Sequence[str]] = None
    ) -> str:
        """Block server for the initial write of the given content class."""
        metrics = self.selection_metrics(candidate_ids)
        chosen = self.selector.select_primary(content_class, metrics).host_id
        self.note_placement(chosen)
        return chosen

    def select_replica(
        self,
        content_class,
        candidate_ids: Optional[Sequence[str]] = None,
        primary_id: Optional[str] = None,
    ) -> str:
        """Block server for the replica of the given content class."""
        metrics = self.selection_metrics(candidate_ids)
        primary = next((m for m in metrics if m.host_id == primary_id), None)
        chosen = self.selector.select_replica(content_class, metrics, primary).host_id
        self.note_placement(chosen)
        return chosen

    def select_read_source(self, content_class, replica_ids: Sequence[str]) -> str:
        """Which replica a read should be served from (best uplink)."""
        metrics = self.selection_metrics(replica_ids)
        return self.selector.select_read_source(content_class, metrics).host_id

    # -- diagnostics -----------------------------------------------------------------------
    def link_rate_bps(self, link: Link) -> float:
        """Advertised rate of one link (for inspection/ablation)."""
        return self.tree.link_rate_bps(link)

    def report(self) -> Dict[str, object]:
        """A snapshot of controller state for logging / off-line analysis."""
        return {
            "time_s": self.sim.now,
            "rounds_run": self.rounds_run,
            "sla_violations": self.sla_monitor.count,
            "reservations": len(self.reservations),
            "hosts": {
                m.host_id: {"up_bps": m.up_bps, "down_bps": m.down_bps}
                for m in self.tree.host_metrics()
            },
        }
